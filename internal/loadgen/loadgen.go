// Package loadgen is a closed-loop HTTP load generator for glade-serve:
// a fixed number of clients each issue one request at a time (generate,
// batch-check, or stats, drawn by weight) against a node set, recording
// per-endpoint latency histograms. Closed-loop means offered load adapts
// to service capacity — the generator measures sustainable throughput and
// its latency distribution rather than queueing delay under overload.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"glade/internal/telemetry"
)

// Mix weighs the request types a client draws from. Zero values drop the
// type; an all-zero mix defaults to check-only.
type Mix struct {
	// Generate weighs POST /v1/grammars/{id}/generate requests.
	Generate int
	// Check weighs POST /v1/grammars/{id}/check batch-membership requests.
	Check int
	// Stats weighs GET /v1/stats requests.
	Stats int
}

// Config parameterizes one load-generation run.
type Config struct {
	// Targets are node base URLs ("http://127.0.0.1:8080"). Un-keyed
	// requests (stats) round-robin across them.
	Targets []string
	// GrammarIDs are the stored grammars keyed requests draw from.
	GrammarIDs []string
	// Route maps a grammar id to the base URL that should receive its
	// requests — a ring-aware client, like a production load balancer that
	// understands placement. Nil round-robins keyed requests too, paying a
	// proxy hop for every non-owner arrival.
	Route func(grammarID string) string
	// Clients is the closed-loop concurrency (default 4).
	Clients int
	// Duration bounds the run (default 3s).
	Duration time.Duration
	// Mix weighs the request types.
	Mix Mix
	// GenerateN is the sample count per generate request (default 10).
	GenerateN int
	// CheckBatch is the input count per batch-check request (default 32).
	CheckBatch int
}

// EndpointStats aggregates one endpoint's requests over a run.
type EndpointStats struct {
	// Endpoint is "generate", "check", or "stats".
	Endpoint string `json:"endpoint"`
	// Requests and Errors count attempts and non-2xx/transport failures.
	Requests int `json:"requests"`
	Errors   int `json:"errors"`
	// QPS is Requests over the run's wall time.
	QPS float64 `json:"qps"`
	// Latency quantiles and mean, in milliseconds.
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MeanMs float64 `json:"mean_ms"`
	// InputsPerSec is endpoint-specific work throughput: batch inputs/s
	// for check, samples/s for generate (0 for stats).
	InputsPerSec float64 `json:"inputs_per_sec,omitempty"`
}

// Result is one run's aggregate outcome.
type Result struct {
	// Clients and Seconds echo the run shape.
	Clients int     `json:"clients"`
	Seconds float64 `json:"seconds"`
	// Requests, Errors, and QPS aggregate across endpoints.
	Requests int     `json:"requests"`
	Errors   int     `json:"errors"`
	QPS      float64 `json:"qps"`
	// Endpoints holds the per-endpoint breakdown.
	Endpoints []EndpointStats `json:"endpoints"`
}

// endpointTrack is one endpoint's live instruments during a run.
type endpointTrack struct {
	name     string
	requests atomic.Int64
	errors   atomic.Int64
	work     atomic.Int64 // inputs checked / samples generated
	hist     *telemetry.Histogram
}

// Run drives the configured load until the duration elapses or ctx is
// cancelled, whichever is first, and reports the aggregate.
func Run(ctx context.Context, cfg Config) (Result, error) {
	if len(cfg.Targets) == 0 {
		return Result{}, fmt.Errorf("loadgen: no targets")
	}
	if len(cfg.GrammarIDs) == 0 && (cfg.Mix.Generate > 0 || cfg.Mix.Check > 0) {
		return Result{}, fmt.Errorf("loadgen: keyed request types need grammar ids")
	}
	if cfg.Clients <= 0 {
		cfg.Clients = 4
	}
	if cfg.Duration <= 0 {
		cfg.Duration = 3 * time.Second
	}
	if cfg.GenerateN <= 0 {
		cfg.GenerateN = 10
	}
	if cfg.CheckBatch <= 0 {
		cfg.CheckBatch = 32
	}
	if cfg.Mix.Generate <= 0 && cfg.Mix.Check <= 0 && cfg.Mix.Stats <= 0 {
		cfg.Mix.Check = 1
	}

	// One shared client with an idle pool sized to the client count:
	// the default 2-idle-conns-per-host cap would close and re-dial
	// connections on every closed-loop iteration, measuring TCP churn
	// instead of the service.
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.Clients * 2,
			MaxIdleConnsPerHost: cfg.Clients,
			IdleConnTimeout:     90 * time.Second,
		},
	}

	// The corpus for batch checks comes from the service itself: one
	// generate call per grammar, so checks exercise realistic (mostly
	// accepted) inputs rather than all-rejects that die in the DFA rung.
	corpus := map[string][]string{}
	for _, id := range cfg.GrammarIDs {
		inputs, err := fetchCorpus(ctx, client, cfg.target(id, 0), id, cfg.CheckBatch)
		if err != nil {
			return Result{}, fmt.Errorf("loadgen: corpus for %s: %w", id, err)
		}
		corpus[id] = inputs
	}

	reg := telemetry.NewRegistry()
	tracks := map[string]*endpointTrack{}
	for _, name := range []string{"generate", "check", "stats"} {
		tracks[name] = &endpointTrack{
			name: name,
			hist: reg.Histogram("loadgen_latency_seconds", "Request latency.", telemetry.L("endpoint", name)),
		}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; runCtx.Err() == nil; i++ {
				cfg.step(runCtx, client, rng, i, corpus, tracks)
			}
		}(int64(c + 1))
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	res := Result{Clients: cfg.Clients, Seconds: elapsed}
	for _, name := range []string{"generate", "check", "stats"} {
		tr := tracks[name]
		n := int(tr.requests.Load())
		if n == 0 {
			continue
		}
		snap := tr.hist.Snapshot()
		res.Endpoints = append(res.Endpoints, EndpointStats{
			Endpoint:     name,
			Requests:     n,
			Errors:       int(tr.errors.Load()),
			QPS:          float64(n) / elapsed,
			P50Ms:        ms(snap.Quantile(0.50)),
			P95Ms:        ms(snap.Quantile(0.95)),
			P99Ms:        ms(snap.Quantile(0.99)),
			MeanMs:       ms(snap.Mean()),
			InputsPerSec: float64(tr.work.Load()) / elapsed,
		})
		res.Requests += n
		res.Errors += int(tr.errors.Load())
	}
	res.QPS = float64(res.Requests) / elapsed
	return res, nil
}

// ms converts a duration to float milliseconds.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }

// target picks the base URL for a keyed request (Route when set, else
// round-robin by i).
func (cfg Config) target(grammarID string, i int) string {
	if cfg.Route != nil && grammarID != "" {
		return cfg.Route(grammarID)
	}
	return cfg.Targets[i%len(cfg.Targets)]
}

// step issues one request drawn from the mix and records its outcome.
func (cfg Config) step(ctx context.Context, client *http.Client, rng *rand.Rand, i int, corpus map[string][]string, tracks map[string]*endpointTrack) {
	total := cfg.Mix.Generate + cfg.Mix.Check + cfg.Mix.Stats
	draw := rng.Intn(total)
	var id string
	if len(cfg.GrammarIDs) > 0 {
		id = cfg.GrammarIDs[rng.Intn(len(cfg.GrammarIDs))]
	}
	switch {
	case draw < cfg.Mix.Generate:
		url := fmt.Sprintf("%s/v1/grammars/%s/generate?n=%d", cfg.target(id, i), id, cfg.GenerateN)
		cfg.do(ctx, client, tracks["generate"], http.MethodPost, url, nil, cfg.GenerateN)
	case draw < cfg.Mix.Generate+cfg.Mix.Check:
		body, _ := json.Marshal(map[string]any{"inputs": corpus[id]})
		url := cfg.target(id, i) + "/v1/grammars/" + id + "/check"
		cfg.do(ctx, client, tracks["check"], http.MethodPost, url, body, len(corpus[id]))
	default:
		cfg.do(ctx, client, tracks["stats"], http.MethodGet, cfg.Targets[i%len(cfg.Targets)]+"/v1/stats", nil, 0)
	}
}

// do runs one HTTP request, draining the body (keep-alive) and recording
// latency, error status, and work units.
func (cfg Config) do(ctx context.Context, client *http.Client, tr *endpointTrack, method, url string, body []byte, work int) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		tr.requests.Add(1)
		tr.errors.Add(1)
		return
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := client.Do(req)
	elapsed := time.Since(start)
	if ctx.Err() != nil && err != nil {
		return // run ended mid-request; do not count the artifact
	}
	tr.requests.Add(1)
	tr.hist.Observe(elapsed)
	if err != nil {
		tr.errors.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		tr.errors.Add(1)
		return
	}
	tr.work.Add(int64(work))
}

// fetchCorpus draws n inputs from a grammar's generate endpoint to use as
// the batch-check payload.
func fetchCorpus(ctx context.Context, client *http.Client, base, id string, n int) ([]string, error) {
	url := fmt.Sprintf("%s/v1/grammars/%s/generate?n=%d", base, id, n)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("generate: %s: %s", resp.Status, data)
	}
	var out struct {
		Inputs []string `json:"inputs"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, err
	}
	if len(out.Inputs) == 0 {
		return nil, fmt.Errorf("generate returned no inputs")
	}
	return out.Inputs, nil
}
