package glade

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"glade/internal/bytesets"
)

// dyckCheck is the v2-contract version of the dyck oracle.
func dyckCheck(ctx context.Context, s string) (Verdict, error) {
	if err := ctx.Err(); err != nil {
		return VerdictReject, err
	}
	if dyck(s) {
		return VerdictAccept, nil
	}
	return VerdictReject, nil
}

// TestLearnContextMatchesDeprecatedShim pins the migration contract: the
// v2 entry point and the deprecated Learn shim synthesize byte-identical
// grammars from the same inputs.
func TestLearnContextMatchesDeprecatedShim(t *testing.T) {
	opts := DefaultOptions()
	opts.GenAlphabet = bytesets.OfString("()")
	v2, err := LearnContext(context.Background(), []string{"(())"}, CheckOracleFunc(dyckCheck), opts)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := Learn([]string{"(())"}, OracleFunc(dyck), opts)
	if err != nil {
		t.Fatal(err)
	}
	if v1.Grammar.String() != v2.Grammar.String() {
		t.Fatal("v1 shim and v2 entry point learned different grammars")
	}
}

// TestLearnContextCancellation checks the facade surfaces ctx.Err() on
// cancellation.
func TestLearnContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	queries := 0
	o := CheckOracleFunc(func(qctx context.Context, s string) (Verdict, error) {
		queries++
		if queries == 10 {
			cancel()
		}
		return dyckCheck(qctx, s)
	})
	opts := DefaultOptions()
	opts.GenAlphabet = bytesets.OfString("()")
	_, err := LearnContext(ctx, []string{"(())"}, o, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLearnContextSurfacesOracleError checks an oracle failure aborts with
// the error rather than reading as rejection.
func TestLearnContextSurfacesOracleError(t *testing.T) {
	boom := errors.New("oracle hardware on fire")
	queries := 0
	o := CheckOracleFunc(func(ctx context.Context, s string) (Verdict, error) {
		queries++
		if queries > 5 {
			return VerdictReject, boom
		}
		return dyckCheck(ctx, s)
	})
	_, err := LearnContext(context.Background(), []string{"(())"}, o, DefaultOptions())
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the oracle error", err)
	}
}

// TestVerdictConstants pins the facade verdict aliases to the oracle
// package's semantics.
func TestVerdictConstants(t *testing.T) {
	if !VerdictAccept.Accepted() {
		t.Fatal("VerdictAccept not accepted")
	}
	for _, v := range []Verdict{VerdictReject, VerdictCrash, VerdictTimeout} {
		if v.Accepted() {
			t.Fatalf("%v reads as accepted", v)
		}
	}
}

// TestCheckAllFacade exercises the facade's batch helper with both plain
// and pooled oracles.
func TestCheckAllFacade(t *testing.T) {
	inputs := []string{"(())", ")(", "()", "x"}
	want := []Verdict{VerdictAccept, VerdictReject, VerdictAccept, VerdictReject}
	for _, o := range []CheckOracle{
		CheckOracleFunc(dyckCheck),
		ParallelCheckOracle(CheckOracleFunc(dyckCheck), 4),
		AsCheckOracle(OracleFunc(dyck)),
	} {
		got, err := CheckAll(context.Background(), o, inputs, 4)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("CheckAll[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// TestSampleCachesCompiledGrammar is the satellite contract: repeated
// Sample calls on the same grammar compile it once, and the drawn strings
// match the uncached sampler stream exactly.
func TestSampleCachesCompiledGrammar(t *testing.T) {
	res := learnDyck(t)
	g := res.Grammar

	// Same rng seed through both paths: identical streams.
	cached := rand.New(rand.NewSource(7))
	direct := rand.New(rand.NewSource(7))
	sm := NewSampler(g, DefaultSampleDepth)
	for i := 0; i < 50; i++ {
		a := Sample(g, cached)
		b := sm.Sample(direct)
		if a != b {
			t.Fatalf("draw %d: cached Sample %q != sampler %q", i, a, b)
		}
	}
	// The cache holds this grammar's compiled form and reuses it.
	sampleCache.Lock()
	first := sampleCache.c
	if sampleCache.g != g || first == nil {
		sampleCache.Unlock()
		t.Fatal("sample cache did not retain the grammar")
	}
	sampleCache.Unlock()
	Sample(g, cached)
	sampleCache.Lock()
	if sampleCache.c != first {
		sampleCache.Unlock()
		t.Fatal("repeated Sample recompiled the grammar")
	}
	sampleCache.Unlock()

	// Switching grammars swaps the slot.
	other := learnDyck(t).Grammar
	Sample(other, cached)
	sampleCache.Lock()
	if sampleCache.g != other {
		sampleCache.Unlock()
		t.Fatal("sample cache did not follow the new grammar")
	}
	sampleCache.Unlock()
}
