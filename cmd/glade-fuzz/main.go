// Command glade-fuzz runs the §8.3 fuzzing experiments against one
// built-in program.
//
// The default mode is the paper's one-shot comparison: synthesize a
// grammar from the program's seeds, then compare the grammar-based fuzzer
// with the naive and afl-style baselines on valid incremental coverage.
// With -campaign it instead runs a long-lived fuzzing campaign
// (internal/campaign): waves of grammar-fuzzed and mutated inputs, triaged
// into a deduplicated corpus (accept/reject flips, new token shapes), with
// a checkpointed JSON report.
//
// Usage:
//
//	glade-fuzz -program xml [-n 50000] [-fuzzer all|naive|afl|glade]
//	           [-grammar g.txt] [-workers 8] [-timeout 120s] [-seed 1]
//	glade-fuzz -campaign -program sed -duration 30s [-report campaign.json]
//	           [-batch 64] [-refresh 0] [-grammar g.txt] [-workers 8]
//
// Flags:
//
//	-program   program under test: sed flex grep bison xml ruby python javascript
//	-fuzzer    one-shot mode: which fuzzer(s) to run (all naive afl glade)
//	-n         one-shot mode: samples per fuzzer
//	-grammar   load a pre-synthesized grammar (cfg.Marshal format, see
//	           `glade -o` or GET /v1/grammars/{id}) instead of learning
//	-workers   concurrent oracle queries (grammar synthesis and campaign waves)
//	-timeout   grammar-synthesis time bound
//	-seed      random seed
//	-campaign  run a fuzzing campaign instead of the one-shot comparison
//	-duration  campaign runtime (0 = until interrupted)
//	-report    campaign report path (checkpointed and final JSON)
//	-batch     campaign inputs per wave
//	-refresh   campaign grammar-refresh interval (0 = off)
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"glade/internal/bench"
	"glade/internal/campaign"
	"glade/internal/cfg"
	"glade/internal/fuzz"
	"glade/internal/oracle"
	"glade/internal/programs"
)

func main() {
	name := flag.String("program", "xml", "program under test (sed flex grep bison xml ruby python javascript)")
	n := flag.Int("n", 50000, "samples per fuzzer (one-shot mode)")
	which := flag.String("fuzzer", "all", "fuzzer to run: all naive afl glade (one-shot mode)")
	timeout := flag.Duration("timeout", 120*time.Second, "grammar-synthesis timeout")
	grammarFile := flag.String("grammar", "", "load a pre-synthesized grammar (cfg.Marshal format, see `glade -o`) instead of learning")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent oracle queries (0 or 1 = sequential)")
	runCampaign := flag.Bool("campaign", false, "run a long-lived fuzzing campaign instead of the one-shot comparison")
	duration := flag.Duration("duration", 30*time.Second, "campaign runtime (0 = until interrupted)")
	report := flag.String("report", "campaign.json", "campaign report path (checkpointed JSON)")
	batch := flag.Int("batch", 64, "campaign inputs per wave")
	refresh := flag.Duration("refresh", 0, "campaign grammar-refresh interval (0 = off)")
	flag.Parse()

	p := programs.ByName(*name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "glade-fuzz: unknown program %q\n", *name)
		os.Exit(1)
	}
	seeds := p.Seeds()

	// SIGINT/SIGTERM cancel the whole run: grammar synthesis aborts within
	// one oracle wave, and a campaign finalizes its report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Both modes need the synthesized grammar (unless one was supplied).
	loadGrammar := func() *cfg.Grammar {
		if *grammarFile != "" {
			data, err := os.ReadFile(*grammarFile)
			var g *cfg.Grammar
			if err == nil {
				g, err = cfg.Unmarshal(string(data))
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "glade-fuzz:", err)
				os.Exit(1)
			}
			return g
		}
		res, err := bench.LearnProgram(ctx, p, *timeout, *workers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "glade-fuzz:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "# synthesized grammar: %d symbols, %d merges, %.2fs, %d queries\n",
			res.Grammar.Size(), res.Stats.Merged, res.Stats.Duration.Seconds(), res.Stats.OracleQueries)
		return res.Grammar
	}

	if *runCampaign {
		runCampaignMode(ctx, p, loadGrammar(), seeds, *duration, *report, *batch, *refresh, *workers, *seed)
		return
	}

	var fuzzers []fuzz.Fuzzer
	if *which == "all" || *which == "naive" {
		fuzzers = append(fuzzers, fuzz.NewNaive(seeds, nil))
	}
	if *which == "all" || *which == "afl" {
		fuzzers = append(fuzzers, fuzz.NewAFL(seeds))
	}
	if *which == "all" || *which == "glade" {
		fuzzers = append(fuzzers, fuzz.NewGrammar(loadGrammar(), seeds))
	}
	if len(fuzzers) == 0 {
		fmt.Fprintf(os.Stderr, "glade-fuzz: unknown fuzzer %q\n", *which)
		os.Exit(1)
	}

	var base *fuzz.CoverageRun
	fmt.Printf("%-8s %9s %8s %8s %11s\n", "fuzzer", "samples", "valid", "incrcov", "normalized")
	for _, f := range fuzzers {
		run := fuzz.RunCoverage(p, f, *n, rand.New(rand.NewSource(*seed)), 0)
		norm := 1.0
		if base != nil {
			norm = run.Normalized(*base)
		} else if f.Name() == "naive" {
			b := run
			base = &b
		}
		fmt.Printf("%-8s %9d %8d %8d %11.2f\n", f.Name(), run.Samples, run.Valid, run.IncrCover, norm)
	}
}

// runCampaignMode drives one fuzzing campaign against the program and
// prints a bucket summary. Cancelling ctx (SIGINT/SIGTERM) ends an
// unbounded campaign gracefully (the final report is still written).
func runCampaignMode(ctx context.Context, p programs.Program, g *cfg.Grammar, seeds []string,
	duration time.Duration, report string, batch int, refresh time.Duration, workers int, seed int64) {
	conf := campaign.Config{
		Grammar:      g,
		Seeds:        seeds,
		Oracle:       oracle.Func(func(s string) bool { return p.Run(s).OK }),
		Workers:      workers,
		BatchSize:    batch,
		Duration:     duration,
		ReportPath:   report,
		RefreshEvery: refresh,
		RandSeed:     seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		},
	}
	c, err := campaign.New(conf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glade-fuzz:", err)
		os.Exit(1)
	}
	rep, err := c.Run(ctx)
	if err != nil {
		fmt.Fprintln(os.Stderr, "glade-fuzz:", err)
		os.Exit(1)
	}
	fmt.Printf("campaign: %s  %.1fs  %d waves  %d inputs (%d accepted, %d rejected, %d dup)\n",
		p.Name(), rep.ElapsedSeconds, rep.Waves, rep.Inputs, rep.Accepted, rep.Rejected, rep.Duplicates)
	fmt.Printf("%-12s %8s\n", "bucket", "found")
	for _, b := range campaign.Buckets() {
		fmt.Printf("%-12s %8d\n", b, rep.Buckets[b])
	}
	fmt.Printf("oracle: %s\n", rep.Queries.String())
	if rep.Refreshes > 0 {
		fmt.Printf("refreshes: %d (grammar now %d symbols)\n", rep.Refreshes, rep.GrammarSymbols)
	}
	if report != "" {
		fmt.Printf("report: %s\n", report)
	}
}
