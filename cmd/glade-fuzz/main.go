// Command glade-fuzz runs the §8.3 fuzzing experiment against one built-in
// program: it synthesizes a grammar from the program's seeds, then compares
// the grammar-based fuzzer with the naive and afl-style baselines on valid
// incremental coverage.
//
// Usage:
//
//	glade-fuzz -program xml [-n 50000] [-fuzzer all|naive|afl|glade]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"time"

	"glade/internal/bench"
	"glade/internal/cfg"
	"glade/internal/fuzz"
	"glade/internal/programs"
)

func main() {
	name := flag.String("program", "xml", "program under test (sed flex grep bison xml ruby python javascript)")
	n := flag.Int("n", 50000, "samples per fuzzer")
	which := flag.String("fuzzer", "all", "fuzzer to run: all naive afl glade")
	timeout := flag.Duration("timeout", 120*time.Second, "grammar-synthesis timeout")
	grammarFile := flag.String("grammar", "", "load a pre-synthesized grammar (cfg.Marshal format, see `glade -o`) instead of learning")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent oracle queries during grammar synthesis (0 or 1 = sequential)")
	flag.Parse()

	p := programs.ByName(*name)
	if p == nil {
		fmt.Fprintf(os.Stderr, "glade-fuzz: unknown program %q\n", *name)
		os.Exit(1)
	}
	seeds := p.Seeds()

	var fuzzers []fuzz.Fuzzer
	if *which == "all" || *which == "naive" {
		fuzzers = append(fuzzers, fuzz.NewNaive(seeds, nil))
	}
	if *which == "all" || *which == "afl" {
		fuzzers = append(fuzzers, fuzz.NewAFL(seeds))
	}
	if *which == "all" || *which == "glade" {
		var g *cfg.Grammar
		if *grammarFile != "" {
			data, err := os.ReadFile(*grammarFile)
			if err == nil {
				g, err = cfg.Unmarshal(string(data))
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "glade-fuzz:", err)
				os.Exit(1)
			}
		} else {
			res, err := bench.LearnProgram(p, *timeout, *workers)
			if err != nil {
				fmt.Fprintln(os.Stderr, "glade-fuzz:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "# synthesized grammar: %d symbols, %d merges, %.2fs, %d queries\n",
				res.Grammar.Size(), res.Stats.Merged, res.Stats.Duration.Seconds(), res.Stats.OracleQueries)
			g = res.Grammar
		}
		fuzzers = append(fuzzers, fuzz.NewGrammar(g, seeds))
	}
	if len(fuzzers) == 0 {
		fmt.Fprintf(os.Stderr, "glade-fuzz: unknown fuzzer %q\n", *which)
		os.Exit(1)
	}

	var base *fuzz.CoverageRun
	fmt.Printf("%-8s %9s %8s %8s %11s\n", "fuzzer", "samples", "valid", "incrcov", "normalized")
	for _, f := range fuzzers {
		run := fuzz.RunCoverage(p, f, *n, rand.New(rand.NewSource(*seed)), 0)
		norm := 1.0
		if base != nil {
			norm = run.Normalized(*base)
		} else if f.Name() == "naive" {
			b := run
			base = &b
		}
		fmt.Printf("%-8s %9d %8d %8d %11.2f\n", f.Name(), run.Samples, run.Valid, run.IncrCover, norm)
	}
}
