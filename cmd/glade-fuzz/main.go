// Command glade-fuzz runs the §8.3 fuzzing experiments against one
// built-in program.
//
// The default mode is the paper's one-shot comparison: synthesize a
// grammar from the program's seeds, then compare the grammar-based fuzzer
// with the naive and afl-style baselines on valid incremental coverage.
// With -campaign it instead runs a long-lived fuzzing campaign
// (internal/campaign): waves of grammar-fuzzed and mutated inputs, triaged
// into a deduplicated corpus (accept/reject flips, new token shapes), with
// a checkpointed JSON report.
//
// Campaign mode takes any oracle spec, not just the coverage programs:
// -oracle builtin:json fuzzes the in-process JSON validator, and adding
// -diff-oracle builtin:json-strict makes the campaign differential — every
// input is checked against both oracles and disagreements are triaged into
// the diff_accept / diff_reject corpus buckets.
//
// Usage:
//
//	glade-fuzz -program xml [-n 50000] [-fuzzer all|naive|afl|glade]
//	           [-grammar g.txt] [-workers 8] [-timeout 120s] [-seed 1]
//	glade-fuzz -campaign -program sed -duration 30s [-report campaign.json]
//	           [-batch 64] [-refresh 0] [-grammar g.txt] [-workers 8]
//	glade-fuzz -campaign -oracle builtin:json -diff-oracle builtin:json-strict \
//	           -duration 30s
//
// Flags:
//
//	-program     program under test: sed flex grep bison xml ruby python javascript
//	-fuzzer      one-shot mode: which fuzzer(s) to run (all naive afl glade)
//	-n           one-shot mode: samples per fuzzer
//	-grammar     load a pre-synthesized grammar (cfg.Marshal format, see
//	             `glade -o` or GET /v1/grammars/{id}) instead of learning
//	-workers     concurrent oracle queries (grammar synthesis and campaign waves)
//	-timeout     grammar-synthesis time bound
//	-seed        random seed
//	-campaign    run a fuzzing campaign instead of the one-shot comparison
//	-oracle      campaign mode: oracle spec (builtin:NAME, program:NAME,
//	             target:NAME, exec:CMD ARGS); default program:<-program>
//	-diff-oracle campaign mode: second oracle spec; disagreements with
//	             -oracle are triaged into diff_accept / diff_reject
//	-duration    campaign runtime (0 = until interrupted)
//	-report      campaign report path (checkpointed and final JSON)
//	-batch       campaign inputs per wave
//	-refresh     campaign grammar-refresh interval (0 = off)
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"syscall"
	"time"

	"glade/internal/bench"
	"glade/internal/campaign"
	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/fuzz"
	"glade/internal/oracle"
	_ "glade/internal/oracle/registry" // named oracle specs resolve here
	"glade/internal/programs"
)

func main() {
	name := flag.String("program", "xml", "program under test (sed flex grep bison xml ruby python javascript)")
	n := flag.Int("n", 50000, "samples per fuzzer (one-shot mode)")
	which := flag.String("fuzzer", "all", "fuzzer to run: all naive afl glade (one-shot mode)")
	timeout := flag.Duration("timeout", 120*time.Second, "grammar-synthesis timeout")
	grammarFile := flag.String("grammar", "", "load a pre-synthesized grammar (cfg.Marshal format, see `glade -o`) instead of learning")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent oracle queries (0 or 1 = sequential)")
	runCampaign := flag.Bool("campaign", false, "run a long-lived fuzzing campaign instead of the one-shot comparison")
	oracleFlag := flag.String("oracle", "", "campaign mode: oracle spec (builtin:NAME, program:NAME, target:NAME, exec:CMD ARGS); default program:<-program>")
	diffOracleFlag := flag.String("diff-oracle", "", "campaign mode: second oracle spec; disagreements with -oracle land in diff_accept/diff_reject")
	duration := flag.Duration("duration", 30*time.Second, "campaign runtime (0 = until interrupted)")
	report := flag.String("report", "campaign.json", "campaign report path (checkpointed JSON)")
	batch := flag.Int("batch", 64, "campaign inputs per wave")
	refresh := flag.Duration("refresh", 0, "campaign grammar-refresh interval (0 = off)")
	retries := flag.Int("retries", 0, "per-query retry budget for transient oracle failures; verdicts are never retried")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive transient oracle failures that open a circuit breaker (0 = no breaker)")
	flag.Parse()

	// SIGINT/SIGTERM cancel the whole run: grammar synthesis aborts within
	// one oracle wave, and a campaign finalizes its report.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *runCampaign {
		runCampaignMode(ctx, campaignArgs{
			oracleSpec: *oracleFlag, diffSpec: *diffOracleFlag, program: *name,
			grammarFile: *grammarFile, timeout: *timeout, workers: *workers,
			duration: *duration, report: *report, batch: *batch,
			refresh: *refresh, seed: *seed,
			retries: *retries, breakerThreshold: *breakerThreshold,
		})
		return
	}

	p := programs.ByName(*name)
	if p == nil {
		fatal(fmt.Errorf("unknown program %q", *name))
	}
	seeds := p.Seeds()

	loadGrammar := func() *cfg.Grammar {
		if *grammarFile != "" {
			return readGrammar(*grammarFile)
		}
		res, err := bench.LearnProgram(ctx, p, *timeout, *workers)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# synthesized grammar: %d symbols, %d merges, %.2fs, %d queries\n",
			res.Grammar.Size(), res.Stats.Merged, res.Stats.Duration.Seconds(), res.Stats.OracleQueries)
		return res.Grammar
	}

	var fuzzers []fuzz.Fuzzer
	if *which == "all" || *which == "naive" {
		fuzzers = append(fuzzers, fuzz.NewNaive(seeds, nil))
	}
	if *which == "all" || *which == "afl" {
		fuzzers = append(fuzzers, fuzz.NewAFL(seeds))
	}
	if *which == "all" || *which == "glade" {
		fuzzers = append(fuzzers, fuzz.NewGrammar(loadGrammar(), seeds))
	}
	if len(fuzzers) == 0 {
		fatal(fmt.Errorf("unknown fuzzer %q", *which))
	}

	var base *fuzz.CoverageRun
	fmt.Printf("%-8s %9s %8s %8s %11s\n", "fuzzer", "samples", "valid", "incrcov", "normalized")
	for _, f := range fuzzers {
		run := fuzz.RunCoverage(p, f, *n, rand.New(rand.NewSource(*seed)), 0)
		norm := 1.0
		if base != nil {
			norm = run.Normalized(*base)
		} else if f.Name() == "naive" {
			b := run
			base = &b
		}
		fmt.Printf("%-8s %9d %8d %8d %11.2f\n", f.Name(), run.Samples, run.Valid, run.IncrCover, norm)
	}
}

type campaignArgs struct {
	oracleSpec, diffSpec, program, grammarFile, report string
	timeout, duration, refresh                         time.Duration
	workers, batch                                     int
	retries, breakerThreshold                          int
	seed                                               int64
}

// runCampaignMode drives one fuzzing campaign against the -oracle spec
// (default: the -program coverage oracle) and prints a bucket summary.
// Cancelling ctx (SIGINT/SIGTERM) ends an unbounded campaign gracefully
// (the final report is still written).
func runCampaignMode(ctx context.Context, a campaignArgs) {
	specText := a.oracleSpec
	if specText == "" {
		specText = oracle.SpecProgram + ":" + a.program
	}
	spec, err := oracle.ParseSpec(specText)
	if err != nil {
		fatal(err)
	}
	opt := oracle.BuildOptions{
		Workers: a.workers,
		Retry:   oracle.RetryPolicy{MaxAttempts: a.retries + 1},
		Breaker: oracle.BreakerPolicy{Threshold: a.breakerThreshold},
	}
	o, seeds, err := spec.Build(opt)
	if err != nil {
		fatal(err)
	}
	if len(seeds) == 0 {
		fatal(fmt.Errorf("oracle %s has no bundled seeds; use a named oracle (builtin/program/target)", spec))
	}

	conf := campaign.Config{
		Seeds:        seeds,
		Oracle:       o,
		Workers:      a.workers,
		BatchSize:    a.batch,
		Duration:     a.duration,
		ReportPath:   a.report,
		RefreshEvery: a.refresh,
		RandSeed:     a.seed,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "# "+format+"\n", args...)
		},
	}
	if a.diffSpec != "" {
		diffSpec, err := oracle.ParseSpec(a.diffSpec)
		if err != nil {
			fatal(fmt.Errorf("diff oracle: %w", err))
		}
		diff, _, err := diffSpec.Build(opt)
		if err != nil {
			fatal(fmt.Errorf("diff oracle: %w", err))
		}
		conf.DiffOracle = diff
		conf.DiffName = diffSpec.String()
	}

	if a.grammarFile != "" {
		conf.Grammar = readGrammar(a.grammarFile)
	} else {
		opts := core.DefaultOptions()
		opts.Timeout = a.timeout
		opts.Workers = a.workers
		res, err := core.Learn(ctx, seeds, o, opts)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# synthesized grammar: %d symbols, %d merges, %.2fs, %d queries\n",
			res.Grammar.Size(), res.Stats.Merged, res.Stats.Duration.Seconds(), res.Stats.OracleQueries)
		conf.Grammar = res.Grammar
	}

	c, err := campaign.New(conf)
	if err != nil {
		fatal(err)
	}
	rep, err := c.Run(ctx)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("campaign: %s  %.1fs  %d waves  %d inputs (%d accepted, %d rejected, %d dup)\n",
		spec, rep.ElapsedSeconds, rep.Waves, rep.Inputs, rep.Accepted, rep.Rejected, rep.Duplicates)
	fmt.Printf("%-12s %8s\n", "bucket", "found")
	for _, b := range campaign.Buckets() {
		fmt.Printf("%-12s %8d\n", b, rep.Buckets[b])
	}
	fmt.Printf("oracle: %s\n", rep.Queries.String())
	if rep.DiffOracle != "" {
		fmt.Printf("diff oracle: %s  %d disagreements\n", rep.DiffOracle, rep.DiffDisagreements)
	}
	if rep.Refreshes > 0 {
		fmt.Printf("refreshes: %d (grammar now %d symbols)\n", rep.Refreshes, rep.GrammarSymbols)
	}
	if a.report != "" {
		fmt.Printf("report: %s\n", a.report)
	}
}

func readGrammar(path string) *cfg.Grammar {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	g, err := cfg.Unmarshal(string(data))
	if err != nil {
		fatal(err)
	}
	return g
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "glade-fuzz:", err)
	os.Exit(1)
}
