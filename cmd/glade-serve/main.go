// Command glade-serve runs the grammar-learning-as-a-service daemon: a
// JSON/HTTP API multiplexing many learn jobs and many fuzz-input consumers
// over the concurrent oracle engine, with learned grammars persisted to a
// disk-backed store that survives restarts.
//
//	glade-serve -data ./glade-data -jobs 2 -workers 4
//
// The server has no authentication, so it listens on loopback
// (127.0.0.1:8080) by default; exec oracle specs — which run client-chosen
// commands as subprocesses — are refused unless started with -allow-exec.
// Named oracle specs (builtin/program/target, listed by GET /v1/oracles)
// run in-process and need no -allow-exec. Only widen -addr or enable
// -allow-exec when every client that can reach the port is trusted (e.g.
// behind an authenticating reverse proxy).
//
// Observability: GET /metrics serves Prometheus text exposition (oracle
// latency histograms, HTTP and job/campaign lifecycle series); -debug-addr
// starts a second, loopback-only listener carrying net/http/pprof (and a
// /metrics alias) so profiling is never reachable through the public port;
// -log-format/-log-level control the structured stderr log.
//
// A session:
//
//	curl -s localhost:8080/v1/oracles                # registered oracle specs
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"oracle":{"type":"program","name":"sed"}}'  # → {"id":"...","state":"queued",...}
//	curl -s localhost:8080/v1/jobs/<id>?watch=1      # NDJSON progress stream
//	curl -s -X DELETE localhost:8080/v1/jobs/<id>    # cancel (state "canceled")
//	curl -s localhost:8080/v1/grammars/<id>          # the learned grammar
//	curl -s -X POST 'localhost:8080/v1/grammars/<id>/generate?n=10&valid=1'
//	curl -s -X POST localhost:8080/v1/campaigns \
//	    -d '{"grammar_id":"<id>","duration_ms":30000}'  # fuzzing campaign
//	curl -s -X POST localhost:8080/v1/campaigns \
//	    -d '{"oracle":{"type":"builtin","name":"json"},
//	         "diff_oracle":{"type":"builtin","name":"json-strict"},
//	         "duration_ms":30000}'                      # differential campaign
//	curl -s localhost:8080/v1/campaigns/<id>?watch=1    # NDJSON checkpoints
//	curl -s -X DELETE localhost:8080/v1/campaigns/<id>  # cancel, report kept
//	curl -s localhost:8080/metrics                      # Prometheus exposition
//
// See internal/service for the full API surface.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"glade/internal/cluster"
	"glade/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (loopback by default: the API has no authentication)")
	data := flag.String("data", "glade-data", "grammar store directory (created if absent, reloaded on restart)")
	jobs := flag.Int("jobs", 2, "concurrently running learn jobs")
	queue := flag.Int("queue", 256, "queued-job limit; submissions beyond it get 503")
	workers := flag.Int("workers", 1, "default per-job concurrent oracle queries (job specs may override)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job learning time bound")
	oracleTimeout := flag.Duration("oracle-timeout", 10*time.Second, "default per-query timeout for exec oracles; a hanging target is killed and treated as rejecting")
	allowExec := flag.Bool("allow-exec", false, "permit exec oracle specs, letting API clients run arbitrary commands on this host; enable only when every client is trusted")
	maxValidating := flag.Int("max-validating", 2, "concurrent validity-filtered generate requests (?valid=1); excess requests wait for a slot")
	campaigns := flag.Int("campaigns", 1, "concurrently running fuzzing campaigns; queued campaigns wait")
	campaignTimeout := flag.Duration("campaign-timeout", 10*time.Minute, "upper bound on one campaign's duration (clamps the client-chosen duration_ms)")
	retries := flag.Int("retries", 0, "default per-query retry budget for transient oracle failures (job/campaign specs may override, clamped to -max-retries)")
	maxRetries := flag.Int("max-retries", 8, "upper bound on the per-query retry budget a job or campaign spec may request")
	breakerThreshold := flag.Int("breaker-threshold", 16, "consecutive transient oracle failures that open the per-oracle circuit breaker (negative disables)")
	logFormat := flag.String("log-format", "text", `log output format: "text" or "json"`)
	logLevel := flag.String("log-level", "info", `minimum log level: "debug", "info", "warn", or "error" (debug includes per-request HTTP lines)`)
	debugAddr := flag.String("debug-addr", "", "optional debug listener with net/http/pprof and /metrics (e.g. 127.0.0.1:6060); keep it on loopback — it is never mounted on the public mux")
	quiet := flag.Bool("quiet", false, "suppress per-job log lines (same as -log-level error)")
	peers := flag.String("peers", "", "comma-separated host:port list of every cluster member including this node; empty runs single-node")
	self := flag.String("self", "", "this node's address as it appears in -peers (defaults to -addr); must match exactly for ownership routing")
	flag.Parse()

	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "glade-serve: "+format+"\n", args...)
		os.Exit(1)
	}
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fatal("bad -log-level %q: %v", *logLevel, err)
	}
	if *quiet {
		level = slog.LevelError
	}
	hopts := &slog.HandlerOptions{Level: level}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, hopts)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, hopts)
	default:
		fatal("bad -log-format %q: want text or json", *logFormat)
	}
	logger := slog.New(handler)

	cfg := service.Config{
		DataDir:              *data,
		MaxJobs:              *jobs,
		QueueDepth:           *queue,
		DefaultWorkers:       *workers,
		MaxJobDuration:       *jobTimeout,
		DefaultOracleTimeout: *oracleTimeout,
		AllowExec:            *allowExec,
		MaxValidating:        *maxValidating,
		MaxCampaigns:         *campaigns,
		MaxCampaignDuration:  *campaignTimeout,
		DefaultRetries:       *retries,
		MaxRetries:           *maxRetries,
		BreakerThreshold:     *breakerThreshold,
		Logger:               logger,
	}
	srv, err := service.New(cfg)
	if err != nil {
		fatal("%v", err)
	}

	// Every deployment runs behind the cluster router — a single node is
	// just a one-peer ring where every key is locally owned — so the code
	// path (and the /v1/cluster endpoint) is identical at every scale.
	selfAddr := *self
	if selfAddr == "" {
		selfAddr = *addr
	}
	peerList := []string{selfAddr}
	if *peers != "" {
		peerList = nil
		for _, p := range strings.Split(*peers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peerList = append(peerList, p)
			}
		}
	}
	ring, err := cluster.NewRing(peerList, 0)
	if err != nil {
		fatal("%v", err)
	}
	prober := cluster.NewProber(selfAddr, ring.Peers(), 0, logger)
	router, err := cluster.NewRouter(selfAddr, ring, prober, srv.Handler(), logger)
	if err != nil {
		fatal("%v", err)
	}
	if len(ring.Peers()) > 1 {
		prober.Start()
		defer prober.Stop()
		logger.Info("cluster mode", "self", selfAddr, "peers", ring.Peers())
	}

	// The pprof surface rides a separate listener so the public API port
	// never exposes profiling endpoints, whatever the mux grows later.
	if *debugAddr != "" {
		if host, _, err := net.SplitHostPort(*debugAddr); err == nil {
			ip := net.ParseIP(host)
			if host != "localhost" && (ip == nil || !ip.IsLoopback()) {
				logger.Warn("debug listener is not on loopback; pprof exposes process internals", "addr", *debugAddr)
			}
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		dmux.Handle("/metrics", srv.Registry().Handler())
		dbg := &http.Server{Addr: *debugAddr, Handler: dmux, ReadHeaderTimeout: 10 * time.Second}
		defer dbg.Close()
		go func() {
			logger.Info("debug listener", "addr", *debugAddr)
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug listener failed", "err", err)
			}
		}()
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           router,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Info("listening", "addr", *addr, "data", *data, "jobs", *jobs, "workers", *workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Info("shutting down", "signal", s.String())
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatal("%v", err)
		}
	}

	// Drain first so GET /readyz flips to 503 and load balancers stop
	// routing traffic here, then stop accepting HTTP (long watch streams
	// get 10 s to finish), then wait for running learn jobs so no learned
	// grammar is lost.
	srv.Drain()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Error("shutdown", "err", err)
	}
	srv.Close()
	logger.Info("bye")
}
