// Command glade-serve runs the grammar-learning-as-a-service daemon: a
// JSON/HTTP API multiplexing many learn jobs and many fuzz-input consumers
// over the concurrent oracle engine, with learned grammars persisted to a
// disk-backed store that survives restarts.
//
//	glade-serve -data ./glade-data -jobs 2 -workers 4
//
// The server has no authentication, so it listens on loopback
// (127.0.0.1:8080) by default; exec oracle specs — which run client-chosen
// commands as subprocesses — are refused unless started with -allow-exec.
// Named oracle specs (builtin/program/target, listed by GET /v1/oracles)
// run in-process and need no -allow-exec. Only widen -addr or enable
// -allow-exec when every client that can reach the port is trusted (e.g.
// behind an authenticating reverse proxy).
//
// A session:
//
//	curl -s localhost:8080/v1/oracles                # registered oracle specs
//	curl -s -X POST localhost:8080/v1/jobs \
//	    -d '{"oracle":{"type":"program","name":"sed"}}'  # → {"id":"...","state":"queued",...}
//	curl -s localhost:8080/v1/jobs/<id>?watch=1      # NDJSON progress stream
//	curl -s -X DELETE localhost:8080/v1/jobs/<id>    # cancel (state "canceled")
//	curl -s localhost:8080/v1/grammars/<id>          # the learned grammar
//	curl -s -X POST 'localhost:8080/v1/grammars/<id>/generate?n=10&valid=1'
//	curl -s -X POST localhost:8080/v1/campaigns \
//	    -d '{"grammar_id":"<id>","duration_ms":30000}'  # fuzzing campaign
//	curl -s -X POST localhost:8080/v1/campaigns \
//	    -d '{"oracle":{"type":"builtin","name":"json"},
//	         "diff_oracle":{"type":"builtin","name":"json-strict"},
//	         "duration_ms":30000}'                      # differential campaign
//	curl -s localhost:8080/v1/campaigns/<id>?watch=1    # NDJSON checkpoints
//	curl -s -X DELETE localhost:8080/v1/campaigns/<id>  # cancel, report kept
//
// See internal/service for the full API surface.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"glade/internal/service"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (loopback by default: the API has no authentication)")
	data := flag.String("data", "glade-data", "grammar store directory (created if absent, reloaded on restart)")
	jobs := flag.Int("jobs", 2, "concurrently running learn jobs")
	queue := flag.Int("queue", 256, "queued-job limit; submissions beyond it get 503")
	workers := flag.Int("workers", 1, "default per-job concurrent oracle queries (job specs may override)")
	jobTimeout := flag.Duration("job-timeout", 5*time.Minute, "per-job learning time bound")
	oracleTimeout := flag.Duration("oracle-timeout", 10*time.Second, "default per-query timeout for exec oracles; a hanging target is killed and treated as rejecting")
	allowExec := flag.Bool("allow-exec", false, "permit exec oracle specs, letting API clients run arbitrary commands on this host; enable only when every client is trusted")
	maxValidating := flag.Int("max-validating", 2, "concurrent validity-filtered generate requests (?valid=1); excess requests wait for a slot")
	campaigns := flag.Int("campaigns", 1, "concurrently running fuzzing campaigns; queued campaigns wait")
	campaignTimeout := flag.Duration("campaign-timeout", 10*time.Minute, "upper bound on one campaign's duration (clamps the client-chosen duration_ms)")
	quiet := flag.Bool("quiet", false, "suppress per-job log lines")
	flag.Parse()

	logger := log.New(os.Stderr, "glade-serve: ", log.LstdFlags)
	cfg := service.Config{
		DataDir:              *data,
		MaxJobs:              *jobs,
		QueueDepth:           *queue,
		DefaultWorkers:       *workers,
		MaxJobDuration:       *jobTimeout,
		DefaultOracleTimeout: *oracleTimeout,
		AllowExec:            *allowExec,
		MaxValidating:        *maxValidating,
		MaxCampaigns:         *campaigns,
		MaxCampaignDuration:  *campaignTimeout,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	srv, err := service.New(cfg)
	if err != nil {
		logger.Fatal(err)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (data %s, jobs %d, workers %d)", *addr, *data, *jobs, *workers)
		errCh <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		logger.Printf("received %v, shutting down", s)
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Fatal(err)
		}
	}

	// Stop accepting HTTP first (long watch streams get 10 s to drain),
	// then wait for running learn jobs so no learned grammar is lost.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "glade-serve: shutdown: %v\n", err)
	}
	srv.Close()
	logger.Printf("bye")
}
