// Command glade synthesizes a context-free grammar for a program's input
// language from seed inputs and blackbox membership access, then optionally
// samples new inputs from it.
//
// Oracles (choose one):
//
//	-target url|grep|lisp|xml      a built-in §8.2 evaluation language
//	-program sed|flex|grep|...     a built-in §8.3 simulated program
//	-cmd 'prog args'               run an external command per query;
//	                               input on stdin, valid iff exit status 0
//
// Seeds come from -seed flags (repeatable) and/or files named as positional
// arguments; with a built-in oracle, its bundled seeds are the default.
//
// Example:
//
//	glade -target xml -samples 3
//	glade -cmd 'python3 -c "import sys,json;json.load(sys.stdin)"' seeds/*.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/oracle"
	"glade/internal/programs"
	"glade/internal/targets"
)

type seedList []string

func (s *seedList) String() string     { return strings.Join(*s, ",") }
func (s *seedList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var seeds seedList
	targetName := flag.String("target", "", "built-in target language (url grep lisp xml)")
	programName := flag.String("program", "", "built-in simulated program (sed flex grep bison xml ruby python javascript)")
	cmd := flag.String("cmd", "", "external oracle command (input on stdin, exit 0 = valid)")
	flag.Var(&seeds, "seed", "seed input (repeatable)")
	samples := flag.Int("samples", 0, "print this many samples from the synthesized grammar")
	out := flag.String("o", "", "also write the grammar in cfg.Marshal format to this file")
	timeout := flag.Duration("timeout", 60*time.Second, "learning timeout")
	oracleTimeout := flag.Duration("oracle-timeout", 0, "per-query timeout for -cmd oracles; a hanging run is killed and treated as rejecting (0 = unbounded)")
	noPhase2 := flag.Bool("no-phase2", false, "disable recursive merging (phase 2)")
	noCharGen := flag.Bool("no-chargen", false, "disable character generalization")
	trace := flag.Bool("trace", false, "print every generalization step")
	workers := flag.Int("workers", 0, "concurrent oracle queries (0 or 1 = sequential; the grammar is identical either way)")
	flag.Parse()

	o, defaults, err := pickOracle(*targetName, *programName, *cmd, *workers, *oracleTimeout)
	if err != nil {
		fatal(err)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		seeds = append(seeds, string(data))
	}
	if len(seeds) == 0 {
		seeds = defaults
	}
	if len(seeds) == 0 {
		fatal(fmt.Errorf("no seed inputs: pass -seed or seed files"))
	}

	opts := core.DefaultOptions()
	opts.Timeout = *timeout
	opts.Phase2 = !*noPhase2
	opts.CharGen = !*noCharGen
	opts.Workers = *workers
	if *cmd != "" {
		// External processes are expensive; restrict character
		// generalization to bytes seen in the seeds plus common structure.
		opts.GenAlphabet = bytesets.OfString(strings.Join(seeds, "")).
			Union(bytesets.OfString(" \t\nabcxyz012<>()[]{}/\\\"'"))
	}
	if *trace {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	// SIGINT/SIGTERM cancel the learn context: the run aborts within one
	// oracle wave instead of running to the timeout.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := core.Learn(ctx, seeds, o, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fatal(fmt.Errorf("interrupted: %w", err))
		}
		fatal(err)
	}
	fmt.Println(res.Grammar.Trim().String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(cfg.Marshal(res.Grammar)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# grammar written to %s (load with -grammar in glade-fuzz)\n", *out)
	}
	s := res.Stats
	fmt.Fprintf(os.Stderr,
		"\n# %d seeds (%d skipped), %d candidates, %d checks, %d oracle queries, %d merges, %.2fs%s\n",
		s.Seeds, s.SeedsSkipped, s.Candidates, s.Checks, s.OracleQueries, s.Merged,
		s.Duration.Seconds(), timedOut(s.TimedOut))
	if *samples > 0 {
		sm := cfg.NewSampler(res.Grammar, cfg.DefaultSampleDepth)
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		for i := 0; i < *samples; i++ {
			fmt.Printf("sample %d: %q\n", i+1, sm.Sample(rng))
		}
	}
}

func pickOracle(target, program, cmd string, workers int, oracleTimeout time.Duration) (oracle.CheckOracle, []string, error) {
	n := 0
	for _, s := range []string{target, program, cmd} {
		if s != "" {
			n++
		}
	}
	if n != 1 {
		return nil, nil, fmt.Errorf("choose exactly one of -target, -program, -cmd")
	}
	switch {
	case target != "":
		t := targets.ByName(target)
		if t == nil {
			return nil, nil, fmt.Errorf("unknown target %q", target)
		}
		return oracle.AsCheck(t.Oracle), t.DocSeeds, nil
	case program != "":
		p := programs.ByName(program)
		if p == nil {
			return nil, nil, fmt.Errorf("unknown program %q", program)
		}
		return oracle.Func(func(s string) bool { return p.Run(s).OK }), p.Seeds(), nil
	default:
		// The learner wraps its oracle in a cache itself; Exec's own bulk
		// path fans subprocess runs out when -workers asks for concurrency.
		argv := strings.Fields(cmd)
		return &oracle.Exec{Argv: argv, Workers: workers, Timeout: oracleTimeout}, nil, nil
	}
}

func timedOut(b bool) string {
	if b {
		return " (timed out)"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "glade:", err)
	os.Exit(1)
}
