// Command glade synthesizes a context-free grammar for a program's input
// language from seed inputs and blackbox membership access, then optionally
// samples new inputs from it.
//
// The membership oracle is selected with one -oracle spec:
//
//	-oracle builtin:json           a registered in-process oracle over a
//	                               pure-Go target (json, json-strict, xml,
//	                               url, regexp, mime, csv, semver, gosrc)
//	-oracle program:sed            a built-in §8.3 simulated program
//	-oracle target:xml             a built-in §8.2 evaluation language
//	-oracle 'exec:prog args'       run an external command per query;
//	                               input on stdin, valid iff exit status 0
//
// Bare names resolve against the registry (builtin first, then program,
// then target), and any spec containing whitespace is treated as an exec
// command, so -oracle json and -oracle 'python3 -' both work.
//
// Seeds come from -seed flags (repeatable) and/or files named as positional
// arguments; with a named oracle, its bundled seeds are the default.
//
// Example:
//
//	glade -oracle target:xml -samples 3
//	glade -oracle 'python3 -c "import sys,json;json.load(sys.stdin)"' seeds/*.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"glade/internal/bytesets"
	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/oracle"
	_ "glade/internal/oracle/registry" // named oracle specs resolve here
	"glade/internal/telemetry"
)

type seedList []string

func (s *seedList) String() string     { return strings.Join(*s, ",") }
func (s *seedList) Set(v string) error { *s = append(*s, v); return nil }

func main() {
	var seeds seedList
	oracleFlag := flag.String("oracle", "", "membership oracle spec: builtin:NAME, program:NAME, target:NAME, or exec:CMD ARGS (bare names resolve against the registry)")
	flag.Var(&seeds, "seed", "seed input (repeatable)")
	samples := flag.Int("samples", 0, "print this many samples from the synthesized grammar")
	out := flag.String("o", "", "also write the grammar in cfg.Marshal format to this file")
	timeout := flag.Duration("timeout", 60*time.Second, "learning timeout")
	oracleTimeout := flag.Duration("oracle-timeout", 0, "per-query timeout; a hanging query is killed and treated as rejecting (0 = unbounded)")
	noPhase2 := flag.Bool("no-phase2", false, "disable recursive merging (phase 2)")
	noCharGen := flag.Bool("no-chargen", false, "disable character generalization")
	steps := flag.Bool("steps", false, "print every generalization step")
	traceOut := flag.String("trace", "", "write the learner's phase-span trace to this file as NDJSON (one span per line: name, seed, start, duration_ns, attrs)")
	workers := flag.Int("workers", 0, "concurrent oracle queries (0 or 1 = sequential; the grammar is identical either way)")
	retries := flag.Int("retries", 0, "per-query retry budget for transient oracle failures (fork failures, ENOMEM); verdicts are never retried, so the grammar is identical either way")
	breakerThreshold := flag.Int("breaker-threshold", 0, "consecutive transient oracle failures that open a circuit breaker (0 = no breaker)")
	flag.Parse()

	if *oracleFlag == "" {
		fatal(fmt.Errorf("no oracle: pass -oracle (e.g. -oracle builtin:json, -oracle target:xml, -oracle 'exec:python3 -')"))
	}
	spec, err := oracle.ParseSpec(*oracleFlag)
	if err != nil {
		fatal(err)
	}
	o, defaults, err := spec.Build(oracle.BuildOptions{
		Workers:        *workers,
		DefaultTimeout: *oracleTimeout,
		Retry:          oracle.RetryPolicy{MaxAttempts: *retries + 1},
		Breaker:        oracle.BreakerPolicy{Threshold: *breakerThreshold},
	})
	if err != nil {
		fatal(err)
	}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		seeds = append(seeds, string(data))
	}
	if len(seeds) == 0 {
		seeds = defaults
	}
	if len(seeds) == 0 {
		fatal(fmt.Errorf("no seed inputs: pass -seed or seed files"))
	}

	opts := core.DefaultOptions()
	opts.Timeout = *timeout
	opts.Phase2 = !*noPhase2
	opts.CharGen = !*noCharGen
	opts.Workers = *workers
	if spec.IsExec() {
		// External processes are expensive; restrict character
		// generalization to bytes seen in the seeds plus common structure.
		opts.GenAlphabet = bytesets.OfString(strings.Join(seeds, "")).
			Union(bytesets.OfString(" \t\nabcxyz012<>()[]{}/\\\"'"))
	}
	if *steps {
		opts.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		opts.Tracer = telemetry.NewNDJSONTracer(f)
	}

	// SIGINT/SIGTERM cancel the learn context: the run aborts within one
	// oracle wave instead of running to the timeout.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := core.Learn(ctx, seeds, o, opts)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fatal(fmt.Errorf("interrupted: %w", err))
		}
		fatal(err)
	}
	if traceFile != nil {
		if err := traceFile.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# phase trace written to %s\n", *traceOut)
	}
	fmt.Println(res.Grammar.Trim().String())
	if *out != "" {
		if err := os.WriteFile(*out, []byte(cfg.Marshal(res.Grammar)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "# grammar written to %s (load with -grammar in glade-fuzz)\n", *out)
	}
	s := res.Stats
	fmt.Fprintf(os.Stderr,
		"\n# %d seeds (%d skipped), %d candidates, %d checks, %d oracle queries, %d merges, %.2fs%s\n",
		s.Seeds, s.SeedsSkipped, s.Candidates, s.Checks, s.OracleQueries, s.Merged,
		s.Duration.Seconds(), timedOut(s.TimedOut))
	if *samples > 0 {
		sm := cfg.NewSampler(res.Grammar, cfg.DefaultSampleDepth)
		rng := rand.New(rand.NewSource(time.Now().UnixNano()))
		for i := 0; i < *samples; i++ {
			fmt.Printf("sample %d: %q\n", i+1, sm.Sample(rng))
		}
	}
}

func timedOut(b bool) string {
	if b {
		return " (timed out)"
	}
	return ""
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "glade:", err)
	os.Exit(1)
}
