package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"glade/internal/bench"
	servebench "glade/internal/bench/serve"
)

// jsonReport is the -json output: one machine-readable row per benchmark
// measurement, so repeated runs accumulate comparable BENCH_*.json
// trajectory artifacts across the repository's history.
type jsonReport struct {
	GeneratedAt time.Time  `json:"generated_at"`
	Config      jsonConfig `json:"config"`
	Results     []jsonRow  `json:"results"`
}

type jsonConfig struct {
	Seeds       int     `json:"seeds"`
	EvalSamples int     `json:"eval_samples"`
	FuzzSamples int     `json:"fuzz_samples"`
	TimeoutSec  float64 `json:"timeout_sec"`
	Workers     int     `json:"workers"`
	RandSeed    int64   `json:"rand_seed"`
}

// jsonRow is one measurement. Figure names the source experiment; the
// remaining fields apply where the experiment defines them.
type jsonRow struct {
	Figure    string  `json:"figure"`
	Program   string  `json:"program,omitempty"`
	Target    string  `json:"target,omitempty"`
	Learner   string  `json:"learner,omitempty"`
	Variant   string  `json:"variant,omitempty"`
	Engine    string  `json:"engine,omitempty"`
	Oracle    string  `json:"oracle,omitempty"`
	Mode      string  `json:"mode,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	Queries   int     `json:"queries,omitempty"`
	Inputs    int     `json:"inputs,omitempty"`
	Seconds   float64 `json:"seconds,omitempty"`
	Speedup   float64 `json:"speedup,omitempty"`
	QPS       float64 `json:"qps,omitempty"`
	Precision float64 `json:"precision,omitempty"`
	Recall    float64 `json:"recall,omitempty"`
	F1        float64 `json:"f1,omitempty"`
	// Parse-figure fields: membership throughput (MB/s of input and mean
	// ns per query), allocations per membership query and per sample,
	// sampling throughput, and the old-vs-new membership ratio.
	MBps          float64  `json:"mbps,omitempty"`
	NsPerAccept   float64  `json:"ns_per_accept,omitempty"`
	AllocsPerOp   *float64 `json:"allocs_per_op,omitempty"`
	SamplesPerSec float64  `json:"samples_per_sec,omitempty"`
	SampleAllocs  *float64 `json:"sample_allocs_per_op,omitempty"`
	Ratio         float64  `json:"ratio,omitempty"`
	Agree         *bool    `json:"agree,omitempty"`
	// Ladder fields (compiled rows): full per-rung verdict agreement and
	// the corpus share each rung decided. Pointers so a 0% share (or a
	// false agreement) still lands in the JSON for the CI gate.
	RungAgree     *bool    `json:"rung_agree,omitempty"`
	DFARejectRate *float64 `json:"dfa_reject_rate,omitempty"`
	VMShare       *float64 `json:"vm_share,omitempty"`
	EarleyShare   *float64 `json:"earley_share,omitempty"`
	Identical     *bool    `json:"identical,omitempty"`
	TimedOut      bool     `json:"timed_out,omitempty"`
	// Telemetry-figure fields: per-query mean and the instrumented-vs-bare
	// slowdown (pointer so a 0.00% measurement still lands in the JSON).
	NsPerQuery  float64  `json:"ns_per_query,omitempty"`
	OverheadPct *float64 `json:"overhead_pct,omitempty"`
	// Serve-figure fields: cluster size, per-endpoint request/error counts
	// and latency quantiles, and endpoint work throughput. Errors is a
	// pointer so a clean zero-error run still lands in the JSON for
	// scripts/servecheck to assert on.
	Nodes        int     `json:"nodes,omitempty"`
	Endpoint     string  `json:"endpoint,omitempty"`
	Clients      int     `json:"clients,omitempty"`
	Requests     int     `json:"requests,omitempty"`
	Errors       *int    `json:"errors,omitempty"`
	P50Ms        float64 `json:"p50_ms,omitempty"`
	P95Ms        float64 `json:"p95_ms,omitempty"`
	P99Ms        float64 `json:"p99_ms,omitempty"`
	InputsPerSec float64 `json:"inputs_per_sec,omitempty"`
}

// report collects rows while figures run; nil (no -json flag) collects
// nothing.
var report *jsonReport

func recordRows(rows ...jsonRow) {
	if report != nil {
		report.Results = append(report.Results, rows...)
	}
}

func recordSpeedup(rows []bench.SpeedupRow) {
	for _, r := range rows {
		ident := r.Identical
		recordRows(jsonRow{
			Figure: "speedup", Program: r.Program, Workers: r.Workers,
			Queries: r.Queries, Seconds: r.Seconds, Speedup: r.Speedup,
			QPS: r.QPS, Identical: &ident, TimedOut: r.TimedOut,
		})
	}
}

func recordOracle(rows []bench.OracleRow) {
	for _, r := range rows {
		recordRows(jsonRow{
			Figure: "oracle", Oracle: r.Oracle, Mode: r.Mode,
			Workers: r.Workers, Queries: r.Queries, Seconds: r.Seconds,
			QPS: r.QPS, Speedup: r.Speedup,
		})
	}
}

func recordTelemetry(rows []bench.TelemetryRow) {
	for _, r := range rows {
		row := jsonRow{
			Figure: "telemetry", Mode: r.Mode, Workers: r.Workers,
			Queries: r.Queries, Seconds: r.Seconds, QPS: r.QPS,
			NsPerQuery: r.NsPerQuery,
		}
		if r.Mode == "instrumented" || r.Mode == "resilient" {
			o := r.OverheadPct
			row.OverheadPct = &o
		}
		recordRows(row)
	}
}

func recordServe(rows []servebench.ServeRow) {
	for _, r := range rows {
		e := r.Errors
		recordRows(jsonRow{
			Figure: "serve", Nodes: r.Nodes, Endpoint: r.Endpoint,
			Clients: r.Clients, Requests: r.Requests, Errors: &e,
			Seconds: r.Seconds, QPS: r.QPS,
			P50Ms: r.P50Ms, P95Ms: r.P95Ms, P99Ms: r.P99Ms,
			InputsPerSec: r.InputsPerSec,
		})
	}
}

func recordParse(rows []bench.ParseRow) {
	for _, r := range rows {
		r := r
		row := jsonRow{
			Figure: "parse", Program: r.Program, Engine: r.Engine,
			Inputs: r.Inputs, MBps: r.MBps, NsPerAccept: r.NsPerAccept,
			AllocsPerOp: &r.AcceptAllocs, SamplesPerSec: r.SamplesPerSec,
			SampleAllocs: &r.SampleAllocs, Ratio: r.Ratio, Agree: &r.Agree,
			RungAgree: &r.RungAgree,
		}
		if r.Engine == "compiled" {
			row.DFARejectRate = &r.DFARejectRate
			row.VMShare = &r.VMShare
			row.EarleyShare = &r.EarleyShare
		}
		recordRows(row)
	}
}

func recordFig4(rows []bench.LearnerRow) {
	for _, r := range rows {
		recordRows(jsonRow{
			Figure: "fig4", Target: r.Target, Learner: r.Learner,
			Precision: r.Precision, Recall: r.Recall, F1: r.F1,
			Seconds: r.Seconds, TimedOut: r.TimedOut,
		})
	}
}

func recordFig6(rows []bench.ProgramRow) {
	for _, r := range rows {
		recordRows(jsonRow{
			Figure: "fig6", Program: r.Program,
			Queries: r.Queries, Seconds: r.Seconds,
		})
	}
}

func recordAblations(rows []bench.AblationRow) {
	for _, r := range rows {
		recordRows(jsonRow{
			Figure: "ablations", Target: r.Target, Variant: r.Variant,
			Precision: r.Precision, Recall: r.Recall, F1: r.F1,
			Queries: r.Queries, Seconds: r.Seconds,
		})
	}
}

// writeReport emits the collected rows to path.
func writeReport(path string, c bench.Config) {
	report.GeneratedAt = time.Now().UTC()
	report.Config = jsonConfig{
		Seeds:       c.Seeds,
		EvalSamples: c.EvalSamples,
		FuzzSamples: c.FuzzSamples,
		TimeoutSec:  c.Timeout.Seconds(),
		Workers:     c.Workers,
		RandSeed:    c.RandSeed,
	}
	data, err := json.MarshalIndent(report, "", "  ")
	fail(err)
	fail(os.WriteFile(path, append(data, '\n'), 0o644))
	fmt.Fprintf(os.Stderr, "# %d result rows written to %s\n", len(report.Results), path)
}
