// Command glade-bench regenerates every table and figure of the paper's
// evaluation (§8). Each figure prints as a text table; see EXPERIMENTS.md
// for the expected shapes.
//
// Usage:
//
//	glade-bench [-fig 4a|4b|4c|5|6|7a|7b|7c|8|ablations|speedup|parse|oracle|telemetry|all] [flags]
//
// The default flags match the paper's scale (50 seeds, 1000 evaluation
// samples, 50,000 fuzzing samples, 300 s learner timeout); use -quick for a
// reduced run that finishes in well under a minute.
//
// -fig parse measures the compiled-grammar engine (cfg.Compiled) against
// the map-based Earley parser and pointer-walking sampler on grammars
// learned from the sed and xml programs: membership throughput (MB/s and
// ns/query), sampling throughput, allocations per operation, and the
// old-vs-new ratio, with verdict agreement re-checked over the whole
// corpus. With -json the rows land in BENCH_parse.json, which
// scripts/parsecheck validates in CI.
//
// -fig oracle measures the in-process oracle registry against an
// equivalent external-command oracle: the same JSON-membership workload
// runs through builtin:json and through this binary re-executed as a
// stdin oracle (so both sides run the identical validator and the gap is
// pure process overhead), at several worker counts. With -json the rows
// land in BENCH_oracle.json, which scripts/oraclecheck validates in CI.
//
// -fig telemetry measures the observability stack's cost on the oracle hot
// path: the same builtin:json workload dispatched through a bare worker
// pool and through the metrics.QueryTimer + telemetry histogram stack every
// glade-serve job runs under, at several worker counts, min-of-repetitions.
// With -json the rows land in BENCH_telemetry.json, which
// scripts/telemetrycheck validates in CI (instrumentation must stay within
// a few percent of bare dispatch).
//
// -fig speedup measures the concurrent batched oracle-query engine: it
// learns the sed and xml programs at Workers=1 and Workers=N over an
// oracle carrying a per-query delay (-qdelay) that simulates the
// subprocess-execution cost of the paper's real setting, reports wall-clock
// speedup and oracle throughput, and verifies the synthesized grammars are
// byte-identical. -workers also parallelizes the oracle queries of every
// other figure's learning runs; their grammars and scores are identical
// either way, but the reported query counts grow with speculation, so the
// default stays sequential.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"glade/internal/bench"
	servebench "glade/internal/bench/serve"
	"glade/internal/oracle"
	_ "glade/internal/oracle/registry" // named oracles for -fig oracle and -stdin-oracle
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 4a 4b 4c 5 6 7a 7b 7c 8 ablations speedup parse oracle telemetry serve all")
	seeds := flag.Int("seeds", 50, "seed inputs per target (Figure 4)")
	eval := flag.Int("eval", 1000, "samples per precision/recall estimate")
	fuzzN := flag.Int("samples", 50000, "samples per fuzzer (Figure 7)")
	timeout := flag.Duration("timeout", 300*time.Second, "per-learner timeout")
	quick := flag.Bool("quick", false, "reduced-scale run (seeds=10 eval=200 samples=4000)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 0, "concurrent oracle queries (0 or 1 = sequential; also the upper point of -fig speedup). Sequential by default so the query-count columns match the paper's cost model — speculative prefetching issues extra queries")
	jsonOut := flag.String("json", "", "also write machine-readable results (program, queries, wall-clock, workers) to this file")
	flag.DurationVar(&qdelay, "qdelay", 200*time.Microsecond, "simulated per-query program-execution cost in -fig speedup")
	stdinOracle := flag.String("stdin-oracle", "", "internal: act as an exec oracle for the named builtin — read stdin, exit 0 iff it is a member (used by -fig oracle as its subprocess baseline)")
	flag.IntVar(&serveClients, "serve-clients", 8, "closed-loop client count for -fig serve")
	flag.DurationVar(&serveDuration, "serve-duration", 3*time.Second, "load duration per cluster size for -fig serve (-quick halves it)")
	flag.Parse()
	if *stdinOracle != "" {
		runStdinOracle(*stdinOracle)
		return
	}
	if *jsonOut != "" {
		report = &jsonReport{Results: []jsonRow{}}
	}

	c := bench.Config{Seeds: *seeds, EvalSamples: *eval, FuzzSamples: *fuzzN, Timeout: *timeout, RandSeed: *seed, Workers: *workers}
	if *quick {
		c.Seeds, c.EvalSamples, c.FuzzSamples = 10, 200, 4000
		serveDuration /= 2
	}
	speedupWorkers = *workers
	if speedupWorkers < 2 {
		speedupWorkers = 8
	}

	// SIGINT/SIGTERM cancel the remaining learning runs; figures already
	// computed still print.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	run := func(name string, f func(context.Context, bench.Config)) {
		if *fig == name || *fig == "all" {
			f(ctx, c)
		}
	}
	run("4a", fig4a)
	run("4b", fig4b)
	run("4c", fig4c)
	run("5", fig5)
	run("6", fig6)
	run("7a", fig7a)
	run("7b", fig7b)
	run("7c", fig7c)
	run("8", fig8)
	run("ablations", ablations)
	run("speedup", speedup)
	run("parse", parse)
	run("oracle", oracleFig)
	run("telemetry", telemetryFig)
	run("serve", serveFig)
	if *jsonOut != "" {
		writeReport(*jsonOut, c)
	}
}

// qdelay and speedupWorkers configure the speedup figure (set from flags).
var (
	qdelay         time.Duration
	speedupWorkers int
)

func speedup(ctx context.Context, c bench.Config) {
	fmt.Printf("== Speedup: concurrent oracle-query engine (qdelay=%v) ==\n", qdelay)
	fmt.Printf("%-8s %7s %8s %8s %9s %9s %12s %9s\n",
		"program", "workers", "time(s)", "speedup", "queries", "q/s", "mean-lat", "identical")
	rows := bench.Speedup(ctx, c, nil, []int{1, speedupWorkers}, qdelay)
	for _, r := range rows {
		fmt.Printf("%-8s %7d %8.2f %7.2fx %9d %9.0f %12v %9v\n",
			r.Program, r.Workers, r.Seconds, r.Speedup, r.Queries, r.QPS,
			r.MeanLatency.Round(time.Microsecond), r.Identical)
	}
	recordSpeedup(rows)
	fmt.Println()
}

func parse(ctx context.Context, c bench.Config) {
	fmt.Println("== Parse: recognition ladder vs map-based Earley ==")
	rows, err := bench.Parse(ctx, c, nil)
	fail(err)
	fmt.Printf("%-8s %-9s %7s %10s %8s %10s %11s %9s %7s %6s %11s\n",
		"program", "engine", "inputs", "ns/accept", "MB/s", "allocs/op", "samples/s", "s-allocs", "ratio", "agree", "dfa/vm/earl")
	for _, r := range rows {
		rungs := "-"
		if r.Engine == "compiled" {
			rungs = fmt.Sprintf("%.0f/%.0f/%.0f%%",
				100*r.DFARejectRate, 100*r.VMShare, 100*r.EarleyShare)
		}
		fmt.Printf("%-8s %-9s %7d %10.0f %8.2f %10.1f %11.0f %9.1f %6.2fx %6v %11s\n",
			r.Program, r.Engine, r.Inputs, r.NsPerAccept, r.MBps, r.AcceptAllocs,
			r.SamplesPerSec, r.SampleAllocs, r.Ratio, r.Agree && r.RungAgree, rungs)
	}
	recordParse(rows)
	fmt.Println()
}

var fig4Cache []bench.LearnerRow

func fig4Rows(ctx context.Context, c bench.Config) []bench.LearnerRow {
	if fig4Cache == nil {
		fig4Cache = bench.Fig4(ctx, c)
		recordFig4(fig4Cache)
	}
	return fig4Cache
}

func fig4a(ctx context.Context, c bench.Config) {
	fmt.Println("== Figure 4(a): F1 score per target and learner ==")
	fmt.Printf("%-6s %-9s %6s %6s %6s\n", "target", "learner", "P", "R", "F1")
	for _, r := range fig4Rows(ctx, c) {
		fmt.Printf("%-6s %-9s %6.3f %6.3f %6.3f\n", r.Target, r.Learner, r.Precision, r.Recall, r.F1)
	}
	fmt.Println()
}

func fig4b(ctx context.Context, c bench.Config) {
	fmt.Println("== Figure 4(b): running time (seconds) ==")
	fmt.Printf("%-6s %-9s %8s %s\n", "target", "learner", "time", "timeout")
	for _, r := range fig4Rows(ctx, c) {
		fmt.Printf("%-6s %-9s %8.2f %v\n", r.Target, r.Learner, r.Seconds, r.TimedOut)
	}
	fmt.Println()
}

func fig4c(ctx context.Context, c bench.Config) {
	fmt.Println("== Figure 4(c): GLADE on XML vs number of seed inputs ==")
	fmt.Printf("%6s %9s %7s %8s\n", "seeds", "precision", "recall", "time(s)")
	for _, r := range bench.Fig4c(ctx, c, nil) {
		fmt.Printf("%6d %9.3f %7.3f %8.2f\n", r.Seeds, r.Precision, r.Recall, r.Seconds)
	}
	fmt.Println()
}

func fig5(ctx context.Context, c bench.Config) {
	fmt.Println("== Figure 5: synthesized grammars from documentation seeds ==")
	out := bench.Fig5(ctx, c)
	for _, name := range []string{"url", "grep", "lisp", "xml"} {
		fmt.Printf("--- %s ---\n%s\n", name, out[name])
	}
}

func fig6(ctx context.Context, c bench.Config) {
	fmt.Println("== Figure 6: programs, seeds, and synthesis time ==")
	rows, err := bench.Fig6(ctx, c)
	fail(err)
	recordFig6(rows)
	fmt.Printf("%-11s %8s %10s %9s %9s %8s\n", "program", "points", "seed-lines", "time(s)", "queries", "gsize")
	for _, r := range rows {
		fmt.Printf("%-11s %8d %10d %9.2f %9d %8d\n", r.Program, r.Points, r.SeedLines, r.Seconds, r.Queries, r.GrammarSize)
	}
	fmt.Println()
}

func fig7a(ctx context.Context, c bench.Config) {
	fmt.Println("== Figure 7(a): valid normalized incremental coverage ==")
	rows, err := bench.Fig7a(ctx, c, nil)
	fail(err)
	printCoverage(rows)
}

func fig7b(ctx context.Context, c bench.Config) {
	fmt.Println("== Figure 7(b): versus proxy upper bound ==")
	rows, err := bench.Fig7b(ctx, c)
	fail(err)
	printCoverage(rows)
}

func printCoverage(rows []bench.CoverageRow) {
	fmt.Printf("%-11s %-12s %7s %6s %10s\n", "program", "fuzzer", "valid", "incr", "normalized")
	for _, r := range rows {
		fmt.Printf("%-11s %-12s %7d %6d %10.2f\n", r.Program, r.Fuzzer, r.Valid, r.IncrCover, r.Normalized)
	}
	fmt.Println()
}

func fig7c(ctx context.Context, c bench.Config) {
	fmt.Println("== Figure 7(c): coverage over samples (python) ==")
	rows, err := bench.Fig7c(ctx, c, 0)
	fail(err)
	fmt.Printf("%-8s %9s %7s\n", "fuzzer", "samples", "value")
	for _, r := range rows {
		fmt.Printf("%-8s %9d %7.2f\n", r.Fuzzer, r.Samples, r.Value)
	}
	fmt.Println()
}

func fig8(ctx context.Context, c bench.Config) {
	fmt.Println("== Figure 8: a valid sample from the synthesized XML grammar ==")
	s, err := bench.Fig8(ctx, c)
	fail(err)
	fmt.Printf("%q\n\n", s)
}

func ablations(ctx context.Context, c bench.Config) {
	fmt.Println("== Ablations: design-choice variants ==")
	fmt.Printf("%-6s %-17s %6s %6s %6s %9s %8s\n", "target", "variant", "P", "R", "F1", "queries", "time(s)")
	ablationRows := bench.Ablations(ctx, c)
	recordAblations(ablationRows)
	for _, r := range ablationRows {
		fmt.Printf("%-6s %-17s %6.3f %6.3f %6.3f %9d %8.2f\n",
			r.Target, r.Variant, r.Precision, r.Recall, r.F1, r.Queries, r.Seconds)
	}
	fmt.Println()
}

// oracleFig benchmarks the in-process oracle registry against an exec
// oracle running the identical validator: this binary re-executed with
// -stdin-oracle json. The speedup column is the whole point of the
// registry — scripts/oraclecheck gates CI on it staying large.
func oracleFig(ctx context.Context, c bench.Config) {
	fmt.Println("== Oracle: in-process registry vs exec subprocess (builtin:json) ==")
	self, err := os.Executable()
	fail(err)
	builtinQ, execQ := 20000, 60
	rows, err := bench.OracleBench(ctx, "json", []string{self, "-stdin-oracle", "json"},
		[]int{1, 4, 8}, builtinQ, execQ)
	fail(err)
	fmt.Printf("%-8s %7s %9s %9s %11s %9s\n", "mode", "workers", "queries", "time(s)", "q/s", "speedup")
	for _, r := range rows {
		speedup := ""
		if r.Speedup > 0 {
			speedup = fmt.Sprintf("%8.0fx", r.Speedup)
		}
		fmt.Printf("%-8s %7d %9d %9.3f %11.0f %9s\n",
			r.Mode, r.Workers, r.Queries, r.Seconds, r.QPS, speedup)
	}
	recordOracle(rows)
	fmt.Println()
}

// telemetryFig benchmarks the wrapper stacks' cost on the oracle hot
// path: the same builtin:json workload dispatched bare, through the
// QueryTimer + histogram-mirror stack every service job runs under, and
// through the retry/breaker resilient wrapper's fault-free fast path.
// scripts/telemetrycheck gates CI on both overheads staying within a few
// percent.
func telemetryFig(ctx context.Context, c bench.Config) {
	fmt.Println("== Telemetry: instrumented/resilient vs bare oracle dispatch (builtin:json) ==")
	queries, reps := 24000, 7
	if c.Seeds <= 10 { // -quick
		queries, reps = 12000, 5
	}
	rows, err := bench.TelemetryBench(ctx, []int{1, 4}, queries, reps)
	fail(err)
	fmt.Printf("%-13s %7s %9s %9s %11s %10s %9s\n",
		"mode", "workers", "queries", "time(s)", "q/s", "ns/query", "overhead")
	for _, r := range rows {
		overhead := ""
		if r.Mode == "instrumented" || r.Mode == "resilient" {
			overhead = fmt.Sprintf("%+8.2f%%", r.OverheadPct)
		}
		fmt.Printf("%-13s %7d %9d %9.3f %11.0f %10.0f %9s\n",
			r.Mode, r.Workers, r.Queries, r.Seconds, r.QPS, r.NsPerQuery, overhead)
	}
	recordTelemetry(rows)
	fmt.Println()
}

// serveClients and serveDuration configure the serve figure (set from
// flags).
var (
	serveClients  int
	serveDuration time.Duration
)

// serveFig load-tests glade-serve at 1 and 3 nodes: in-process clusters
// wired through the consistent-hash router, driven by the closed-loop
// generator with a placement-aware route function. scripts/servecheck
// gates CI on the emitted BENCH_serve.json.
func serveFig(ctx context.Context, c bench.Config) {
	fmt.Printf("== Serve: sharded glade-serve under closed-loop load (%d clients, %v per size) ==\n",
		serveClients, serveDuration)
	rows, err := servebench.Serve(ctx, c, []int{1, 3}, serveClients, serveDuration)
	fail(err)
	fmt.Printf("%-6s %-9s %8s %7s %9s %9s %9s %9s %11s\n",
		"nodes", "endpoint", "requests", "errors", "q/s", "p50(ms)", "p95(ms)", "p99(ms)", "inputs/s")
	for _, r := range rows {
		inputs := ""
		if r.InputsPerSec > 0 {
			inputs = fmt.Sprintf("%11.0f", r.InputsPerSec)
		}
		fmt.Printf("%-6d %-9s %8d %7d %9.0f %9.2f %9.2f %9.2f %11s\n",
			r.Nodes, r.Endpoint, r.Requests, r.Errors, r.QPS, r.P50Ms, r.P95Ms, r.P99Ms, inputs)
	}
	recordServe(rows)
	fmt.Println()
}

// runStdinOracle is the hidden exec-oracle mode -fig oracle spawns: read
// one input from stdin, run the named builtin on it in-process, and
// answer through the exit status like any external membership oracle.
func runStdinOracle(name string) {
	reg, ok := oracle.LookupNamed(oracle.SpecBuiltin, name)
	if !ok {
		fmt.Fprintf(os.Stderr, "glade-bench: unknown builtin oracle %q\n", name)
		os.Exit(2)
	}
	input, err := io.ReadAll(os.Stdin)
	fail(err)
	v, err := reg.New(0, 1).Check(context.Background(), string(input))
	fail(err)
	if v.Accepted() {
		os.Exit(0)
	}
	os.Exit(1)
}

func fail(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "glade-bench:", err)
		os.Exit(1)
	}
}
