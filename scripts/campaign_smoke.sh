#!/usr/bin/env bash
# campaign_smoke.sh — CI smoke for the fuzzing-campaign engine: run a
# 30-second CLI campaign against the builtin sed program and assert the
# checkpointed report is valid JSON with at least one corpus entry, then
# run a short differential campaign (builtin:json vs builtin:json-strict)
# and assert at least one oracle disagreement was triaged into the
# diff_accept/diff_reject buckets.
#
# Usage: scripts/campaign_smoke.sh [PROGRAM] [DURATION]
set -eu

cd "$(dirname "$0")/.."

program="${1:-sed}"
duration="${2:-30s}"
tmp="$(mktemp -d)"
report="$tmp/campaign-report.json"
diff_report="$tmp/diff-report.json"
trap 'rm -rf "$tmp"' EXIT

echo "== campaign smoke: $duration campaign against $program =="
go run ./cmd/glade-fuzz -campaign -program "$program" -duration "$duration" \
    -workers 4 -report "$report"

test -s "$report" || { echo "campaign_smoke: report file missing or empty" >&2; exit 1; }

# Validate the report: parseable JSON, marked done, non-empty corpus.
go run ./scripts/reportcheck "$report"

echo "== differential campaign smoke: builtin:json vs builtin:json-strict =="
go run ./cmd/glade-fuzz -campaign -oracle builtin:json -diff-oracle builtin:json-strict \
    -duration 15s -workers 4 -report "$diff_report"

test -s "$diff_report" || { echo "campaign_smoke: diff report missing or empty" >&2; exit 1; }

# The lenient and strict JSON oracles disagree on top-level scalars, which
# the json grammar generates, so a differential run must triage >= 1
# disagreement.
go run ./scripts/reportcheck -diff "$diff_report"
echo "== campaign smoke passed =="
