#!/usr/bin/env bash
# campaign_smoke.sh — CI smoke for the fuzzing-campaign engine: run a
# 30-second CLI campaign against the builtin sed program and assert the
# checkpointed report is valid JSON with at least one corpus entry.
#
# Usage: scripts/campaign_smoke.sh [PROGRAM] [DURATION]
set -eu

cd "$(dirname "$0")/.."

program="${1:-sed}"
duration="${2:-30s}"
report="$(mktemp -d)/campaign-report.json"
trap 'rm -rf "$(dirname "$report")"' EXIT

echo "== campaign smoke: $duration campaign against $program =="
go run ./cmd/glade-fuzz -campaign -program "$program" -duration "$duration" \
    -workers 4 -report "$report"

test -s "$report" || { echo "campaign_smoke: report file missing or empty" >&2; exit 1; }

# Validate the report: parseable JSON, marked done, non-empty corpus.
go run ./scripts/reportcheck "$report"
echo "== campaign smoke passed =="
