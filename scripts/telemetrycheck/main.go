// Command telemetrycheck validates a BENCH_telemetry.json artifact for CI:
// the file must be valid glade-bench -json output containing telemetry-
// figure rows for all three modes at each measured worker count, including
// a Workers=1 measurement, and both wrapped oracle dispatch stacks — the
// instrumented one (the metrics.QueryTimer + histogram stack every
// glade-serve job runs under) and the resilient one (the retry/breaker
// wrapper's fault-free fast path) — must stay within maxOverheadPct of
// bare dispatch: neither observability nor fault tolerance may tax the hot
// path. It mirrors scripts/parsecheck and scripts/oraclecheck so the bench
// smoke needs no jq/python dependency.
//
// Usage:
//
//	go run ./scripts/telemetrycheck BENCH_telemetry.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// maxOverheadPct is the gate: instrumentation adds ~100 ns of atomics per
// query against a multi-microsecond parse, and the resilient wrapper's
// no-fault path adds two mutex acquisitions, so real overhead is well
// under 5%; the margin absorbs loaded CI machines.
const maxOverheadPct = 5.0

// wrappedModes are the stacks measured against bare; each must carry an
// overhead_pct within the gate at every worker count.
var wrappedModes = []string{"instrumented", "resilient"}

// telemetryRow mirrors the telemetry-figure fields of glade-bench's jsonRow.
type telemetryRow struct {
	Figure      string   `json:"figure"`
	Mode        string   `json:"mode"`
	Workers     int      `json:"workers"`
	Queries     int      `json:"queries"`
	QPS         float64  `json:"qps"`
	OverheadPct *float64 `json:"overhead_pct"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: telemetrycheck BENCH_telemetry.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "telemetrycheck:", err)
		os.Exit(1)
	}
	var report struct {
		Results []telemetryRow `json:"results"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		fmt.Fprintf(os.Stderr, "telemetrycheck: report is not valid JSON: %v\n", err)
		os.Exit(1)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "telemetrycheck: "+format+"\n", args...)
		os.Exit(1)
	}
	// modes[workers][mode] for every telemetry-figure row.
	modes := map[int]map[string]telemetryRow{}
	for _, r := range report.Results {
		if r.Figure != "telemetry" {
			continue
		}
		if r.Mode != "bare" && r.Mode != "instrumented" && r.Mode != "resilient" {
			fail("row has mode %q, want bare, instrumented, or resilient", r.Mode)
		}
		if r.Workers < 1 || r.Queries <= 0 || r.QPS <= 0 {
			fail("%s row at workers=%d is degenerate: queries=%d qps=%.0f",
				r.Mode, r.Workers, r.Queries, r.QPS)
		}
		if modes[r.Workers] == nil {
			modes[r.Workers] = map[string]telemetryRow{}
		}
		if _, dup := modes[r.Workers][r.Mode]; dup {
			fail("duplicate %s row at workers=%d", r.Mode, r.Workers)
		}
		modes[r.Workers][r.Mode] = r
	}
	if len(modes) == 0 {
		fail("no telemetry-figure rows (was glade-bench run with -fig telemetry -json?)")
	}
	if modes[1] == nil {
		fail("no Workers=1 measurement: the headline comparison is sequential")
	}
	var worst float64
	for w, byMode := range modes {
		b, okB := byMode["bare"]
		if !okB {
			fail("workers=%d has no bare baseline row", w)
		}
		for _, mode := range wrappedModes {
			i, okI := byMode[mode]
			if !okI {
				fail("workers=%d has no %s row", w, mode)
			}
			if i.OverheadPct == nil {
				fail("%s row at workers=%d carries no overhead_pct", mode, w)
			}
			if *i.OverheadPct > maxOverheadPct {
				fail("workers=%d: %s dispatch is %.2f%% slower than bare (%.0f vs %.0f q/s; gate: %.0f%%)",
					w, mode, *i.OverheadPct, i.QPS, b.QPS, maxOverheadPct)
			}
			if *i.OverheadPct > worst {
				worst = *i.OverheadPct
			}
		}
	}
	fmt.Printf("telemetrycheck: ok (%d worker counts, worst overhead %.2f%%)\n",
		len(modes), worst)
}
