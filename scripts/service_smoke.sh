#!/usr/bin/env bash
# End-to-end smoke of glade-serve, as run by CI: start the daemon on a
# random port, submit a learn job against a builtin program, poll it to
# completion, fetch the grammar, generate 10 validity-filtered inputs, and
# assert every one was accepted by the oracle. Requires curl + jq.
set -euo pipefail
cd "$(dirname "$0")/.."

PROGRAM="${1:-grep}"
DATA=$(mktemp -d)
LOG="$DATA/serve.log"
SERVE_PID=""

go build -o "$DATA/glade-serve" ./cmd/glade-serve
cleanup() {
  [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
  [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
  rm -rf "$DATA"
}
trap cleanup EXIT

# Pick a random port; if the daemon dies before answering /healthz (e.g.
# the port was already taken on a shared runner), retry on a fresh one.
BASE=""
for _ in 1 2 3 4 5; do
  PORT=$(( (RANDOM % 20000) + 20000 ))
  BASE="http://127.0.0.1:$PORT"
  "$DATA/glade-serve" -addr "127.0.0.1:$PORT" -data "$DATA/store" >"$LOG" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 50); do
    curl -sf "$BASE/healthz" >/dev/null 2>&1 && break 2
    kill -0 "$SERVE_PID" 2>/dev/null || break  # daemon exited: new port
    sleep 0.2
  done
  kill "$SERVE_PID" 2>/dev/null || true
  wait "$SERVE_PID" 2>/dev/null || true
  SERVE_PID=""
done
curl -sf "$BASE/healthz" >/dev/null || { echo "server never came up"; cat "$LOG"; exit 1; }

echo "== submit learn job (program:$PROGRAM)"
JOB=$(curl -sf -X POST "$BASE/v1/jobs" -d "{\"oracle\":{\"type\":\"program\",\"name\":\"$PROGRAM\"}}")
ID=$(echo "$JOB" | jq -er .id)
echo "job $ID"

echo "== poll to completion"
STATE=queued
for _ in $(seq 1 300); do
  # Tolerate transient poll failures (momentary connection refusal): retry
  # until the budget runs out instead of letting set -e abort the script.
  STATE=$(curl -sf "$BASE/v1/jobs/$ID" | jq -er .state) || { sleep 1; continue; }
  [ "$STATE" = done ] || [ "$STATE" = failed ] && break
  sleep 1
done
if [ "$STATE" != done ]; then
  echo "job ended in state $STATE"
  curl -s "$BASE/v1/jobs/$ID" | jq .
  cat "$LOG"
  exit 1
fi
QUERIES=$(curl -sf "$BASE/v1/jobs/$ID" | jq -er .stats.queries)
echo "done after $QUERIES oracle queries"
[ "$QUERIES" -gt 0 ] || { echo "done job reports zero queries"; exit 1; }

echo "== fetch grammar"
GRAMMAR=$(curl -sf "$BASE/v1/grammars/$ID")
echo "$GRAMMAR" | head -3
[ -n "$GRAMMAR" ] || { echo "empty grammar"; exit 1; }

echo "== generate 10 validated inputs"
GEN=$(curl -sf -X POST "$BASE/v1/grammars/$ID/generate?n=10&valid=1")
COUNT=$(echo "$GEN" | jq -er .count)
ATTEMPTS=$(echo "$GEN" | jq -er .attempts)
echo "$COUNT accepted inputs in $ATTEMPTS attempts"
if [ "$COUNT" != 10 ]; then
  echo "expected 10 validated inputs, got $COUNT"
  echo "$GEN" | jq .
  exit 1
fi

echo "== stats"
curl -sf "$BASE/v1/stats" | jq '{done, grammars, total_queries}'

echo "== metrics"
# The Prometheus endpoint must expose the core series, and the counters
# must reflect the traffic this script just generated.
METRICS=$(curl -sf "$BASE/metrics")
for series in glade_jobs_submitted_total glade_jobs_done_total \
  glade_oracle_queries_total glade_oracle_query_seconds_bucket \
  glade_http_requests_total glade_http_request_seconds_bucket \
  glade_store_grammars; do
  echo "$METRICS" | grep -q "^$series" || {
    echo "missing metric series $series"
    echo "$METRICS" | head -40
    exit 1
  }
done
SUBMITTED=$(echo "$METRICS" | awk '$1 == "glade_jobs_submitted_total" {print int($2)}')
[ "${SUBMITTED:-0}" -ge 1 ] || { echo "glade_jobs_submitted_total=$SUBMITTED, want >= 1"; exit 1; }
ORACLE_Q=$(echo "$METRICS" | awk '$1 == "glade_oracle_queries_total" {print int($2)}')
[ "${ORACLE_Q:-0}" -ge "$QUERIES" ] || { echo "glade_oracle_queries_total=$ORACLE_Q, want >= $QUERIES"; exit 1; }
echo "metrics OK (submitted=$SUBMITTED oracle_queries=$ORACLE_Q)"
echo "service smoke OK"
