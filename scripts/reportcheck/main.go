// Command reportcheck validates a campaign report file for CI: it must be
// parseable JSON in the campaign.Report shape, marked done, with at least
// one executed input, at least one retained corpus entry, and internally
// consistent resilience counters (oracle_outages / oracle_retries /
// breaker_opens, present when the campaign ran behind the retry/breaker
// wrapper). With -diff the report must additionally come from a
// differential campaign that triaged at least one oracle disagreement
// into the diff_accept / diff_reject buckets. Used by
// scripts/campaign_smoke.sh so the smoke needs no jq/python dependency.
//
// Usage:
//
//	go run ./scripts/reportcheck [-diff] REPORT.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"glade/internal/campaign"
)

func main() {
	diff := flag.Bool("diff", false, "require a differential campaign with >= 1 triaged disagreement")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: reportcheck [-diff] REPORT.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "reportcheck:", err)
		os.Exit(1)
	}
	var rep campaign.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(os.Stderr, "reportcheck: report is not valid JSON: %v\n", err)
		os.Exit(1)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "reportcheck: "+format+"\n", args...)
		os.Exit(1)
	}
	if !rep.Done {
		fail("report not marked done")
	}
	if rep.Inputs == 0 {
		fail("report shows zero executed inputs")
	}
	if len(rep.Corpus) == 0 {
		fail("report corpus is empty")
	}
	if rep.Interesting() == 0 {
		fail("every bucket count is zero despite %d corpus entries", len(rep.Corpus))
	}
	if rep.Accepted+rep.Rejected != rep.Inputs {
		fail("inconsistent counters: accepted %d + rejected %d != inputs %d",
			rep.Accepted, rep.Rejected, rep.Inputs)
	}
	// Resilience counters are optional (omitted when the campaign ran on a
	// bare oracle) but must be sane when present: outages cannot be
	// negative, and a breaker that opened implies the wrapper saw at least
	// that many transient waves survive as outages.
	if rep.OracleOutages < 0 {
		fail("negative oracle_outages %d", rep.OracleOutages)
	}
	if rep.BreakerOpens > 0 && rep.OracleOutages == 0 {
		fail("breaker opened %d times but zero oracle outages were recorded", rep.BreakerOpens)
	}
	if *diff {
		if rep.DiffOracle == "" {
			fail("report is not from a differential campaign (no diff_oracle)")
		}
		if rep.DiffDisagreements == 0 {
			fail("differential campaign triaged zero disagreements")
		}
		triaged := rep.Buckets[campaign.BucketDiffAccept] + rep.Buckets[campaign.BucketDiffReject]
		if triaged == 0 {
			fail("%d disagreements but empty diff_accept/diff_reject buckets", rep.DiffDisagreements)
		}
	}
	resilience := ""
	if rep.OracleOutages > 0 || rep.OracleRetries > 0 || rep.BreakerOpens > 0 {
		resilience = fmt.Sprintf(", %d outages / %d retries / %d breaker opens",
			rep.OracleOutages, rep.OracleRetries, rep.BreakerOpens)
	}
	fmt.Printf("reportcheck: ok — %d inputs, %d corpus entries, buckets %v%s\n",
		rep.Inputs, len(rep.Corpus), rep.Buckets, resilience)
}
