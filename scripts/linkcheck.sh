#!/usr/bin/env bash
# linkcheck.sh — verify that every relative markdown link in the repo's
# documentation points at a file (or directory) that exists. External
# http(s) links and pure #anchors are skipped: CI must not depend on the
# network, and anchor drift is a rendering concern, not a broken path.
#
# Usage: scripts/linkcheck.sh [FILE.md ...]   (defaults to all tracked *.md)
set -u

cd "$(dirname "$0")/.."

if [ "$#" -gt 0 ]; then
    files=("$@")
else
    # All markdown files in the repo, excluding dependency/vendor dirs.
    mapfile -t files < <(find . -name '*.md' -not -path './.git/*' -not -path './vendor/*' | sort)
fi

fail=0
for f in "${files[@]}"; do
    # Extract markdown link targets: [text](target). Reference-style links
    # are rare here; inline links are the repo convention.
    targets=$(grep -o '\[[^]]*\]([^)]*)' "$f" | sed 's/.*](\([^)]*\))/\1/')
    while IFS= read -r target; do
        [ -z "$target" ] && continue
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        # Strip an anchor suffix and any "title" part.
        path="${target%%#*}"
        path="${path%% *}"
        [ -z "$path" ] && continue
        base=$(dirname "$f")
        if [ ! -e "$base/$path" ] && [ ! -e "$path" ]; then
            echo "$f: broken link -> $target"
            fail=1
        fi
    done <<< "$targets"
done

if [ "$fail" -ne 0 ]; then
    echo "linkcheck: broken relative links found" >&2
    exit 1
fi
echo "linkcheck: all relative markdown links resolve"
