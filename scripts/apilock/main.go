// Command apilock locks the public facade's API surface. It dumps every
// exported declaration of the root glade package — functions, methods on
// exported types, type declarations, consts, and vars, rendered as
// signatures via go/ast — into docs/API.md, and in check mode fails when
// the file on disk no longer matches, so facade changes are always
// deliberate and reviewed next to their documentation.
//
// Usage:
//
//	go run ./scripts/apilock           # check docs/API.md against the code (CI)
//	go run ./scripts/apilock -write    # regenerate docs/API.md
//
// The lock covers the facade only: internal packages are free to move, the
// contract importers compile against is not.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/printer"
	"go/token"
	"os"
	"sort"
	"strings"
)

const (
	pkgDir  = "."
	outPath = "docs/API.md"
)

func main() {
	write := flag.Bool("write", false, "regenerate "+outPath+" instead of checking it")
	flag.Parse()

	surface, err := dumpSurface(pkgDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "apilock:", err)
		os.Exit(2)
	}
	doc := render(surface)

	if *write {
		if err := os.WriteFile(outPath, []byte(doc), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "apilock:", err)
			os.Exit(2)
		}
		fmt.Printf("apilock: wrote %s (%d exported declarations)\n", outPath, len(surface))
		return
	}

	onDisk, err := os.ReadFile(outPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "apilock: %s missing (%v); run `go run ./scripts/apilock -write`\n", outPath, err)
		os.Exit(1)
	}
	if string(onDisk) != doc {
		fmt.Fprintf(os.Stderr, "apilock: %s is stale — the facade's exported API surface changed.\n", outPath)
		fmt.Fprintf(os.Stderr, "apilock: run `go run ./scripts/apilock -write` and commit the result alongside the API change.\n")
		diffHint(string(onDisk), doc)
		os.Exit(1)
	}
	fmt.Printf("apilock: %s matches the facade (%d exported declarations)\n", outPath, len(surface))
}

// entry is one exported declaration: a sort key and its rendered form.
type entry struct {
	key  string
	text string
}

// dumpSurface parses the package in dir and renders every exported
// top-level declaration as a signature.
func dumpSurface(dir string) ([]entry, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, 0)
	if err != nil {
		return nil, err
	}
	var entries []entry
	for _, pkg := range pkgs {
		if strings.HasSuffix(pkg.Name, "_test") {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				entries = append(entries, declEntries(fset, decl)...)
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].key != entries[j].key {
			return entries[i].key < entries[j].key
		}
		return entries[i].text < entries[j].text
	})
	return entries, nil
}

// declEntries renders the exported parts of one top-level declaration.
func declEntries(fset *token.FileSet, decl ast.Decl) []entry {
	switch d := decl.(type) {
	case *ast.FuncDecl:
		if !d.Name.IsExported() {
			return nil
		}
		key := d.Name.Name
		if d.Recv != nil {
			recv := recvTypeName(d.Recv)
			if recv == "" || !ast.IsExported(recv) {
				return nil
			}
			key = recv + "." + d.Name.Name
		}
		cp := *d
		cp.Doc = nil
		cp.Body = nil
		return []entry{{key: key, text: renderNode(fset, &cp)}}
	case *ast.GenDecl:
		var out []entry
		for _, spec := range d.Specs {
			switch sp := spec.(type) {
			case *ast.TypeSpec:
				if !sp.Name.IsExported() {
					continue
				}
				cp := *sp
				cp.Doc = nil
				cp.Comment = nil
				out = append(out, entry{
					key:  sp.Name.Name,
					text: "type " + renderNode(fset, &cp),
				})
			case *ast.ValueSpec:
				exported := false
				for _, id := range sp.Names {
					if id.IsExported() {
						exported = true
					}
				}
				if !exported {
					continue
				}
				cp := *sp
				cp.Doc = nil
				cp.Comment = nil
				kw := "var"
				if d.Tok == token.CONST {
					kw = "const"
				}
				out = append(out, entry{
					key:  sp.Names[0].Name,
					text: kw + " " + renderNode(fset, &cp),
				})
			}
		}
		return out
	}
	return nil
}

// recvTypeName unwraps a method receiver to its base type name.
func recvTypeName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// renderNode prints an AST node as Go source on one logical declaration.
func renderNode(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 8}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return fmt.Sprintf("<!-- render error: %v -->", err)
	}
	return buf.String()
}

// render assembles the markdown document.
func render(entries []entry) string {
	var b strings.Builder
	b.WriteString("# glade — public API surface\n\n")
	b.WriteString("Generated by `go run ./scripts/apilock -write`; CI checks it with\n")
	b.WriteString("`go run ./scripts/apilock`. Do not edit by hand — regenerate after\n")
	b.WriteString("any deliberate facade change, and treat a CI failure here as \"the\n")
	b.WriteString("public contract moved without its documentation\".\n\n")
	b.WriteString("```go\n")
	for _, e := range entries {
		b.WriteString(e.text)
		b.WriteString("\n\n")
	}
	b.WriteString("```\n")
	return b.String()
}

// diffHint prints the first few lines that differ, enough to orient
// without pulling in a diff dependency.
func diffHint(old, new string) {
	oldLines := strings.Split(old, "\n")
	newLines := strings.Split(new, "\n")
	shown := 0
	for i := 0; i < len(oldLines) || i < len(newLines); i++ {
		var a, b string
		if i < len(oldLines) {
			a = oldLines[i]
		}
		if i < len(newLines) {
			b = newLines[i]
		}
		if a != b {
			fmt.Fprintf(os.Stderr, "  line %d:\n    locked: %s\n    actual: %s\n", i+1, a, b)
			shown++
			if shown >= 5 {
				fmt.Fprintln(os.Stderr, "  ...")
				return
			}
		}
	}
}
