// Command parsecheck validates a BENCH_parse.json artifact for CI: the
// file must be valid glade-bench -json output containing parse-figure
// rows for both engines on every measured program, every row must report
// verdict agreement between the engines, and the compiled engine must not
// be slower than the map-based baseline (ratio >= 1). It mirrors
// scripts/reportcheck so the parse-bench smoke needs no jq/python
// dependency.
//
// Usage:
//
//	go run ./scripts/parsecheck BENCH_parse.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// parseRow mirrors the parse-figure fields of glade-bench's jsonRow.
type parseRow struct {
	Figure        string   `json:"figure"`
	Program       string   `json:"program"`
	Engine        string   `json:"engine"`
	Inputs        int      `json:"inputs"`
	MBps          float64  `json:"mbps"`
	NsPerAccept   float64  `json:"ns_per_accept"`
	AllocsPerOp   *float64 `json:"allocs_per_op"`
	SamplesPerSec float64  `json:"samples_per_sec"`
	Ratio         float64  `json:"ratio"`
	Agree         *bool    `json:"agree"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: parsecheck BENCH_parse.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "parsecheck:", err)
		os.Exit(1)
	}
	var report struct {
		Results []parseRow `json:"results"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		fmt.Fprintf(os.Stderr, "parsecheck: report is not valid JSON: %v\n", err)
		os.Exit(1)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "parsecheck: "+format+"\n", args...)
		os.Exit(1)
	}
	engines := map[string]map[string]parseRow{} // program -> engine -> row
	for _, r := range report.Results {
		if r.Figure != "parse" {
			continue
		}
		if r.Program == "" || r.Engine == "" {
			fail("parse row missing program or engine: %+v", r)
		}
		if engines[r.Program] == nil {
			engines[r.Program] = map[string]parseRow{}
		}
		engines[r.Program][r.Engine] = r
	}
	if len(engines) == 0 {
		fail("no parse-figure rows found")
	}
	for program, rows := range engines {
		base, ok := rows["parser"]
		if !ok {
			fail("%s: no map-based baseline row", program)
		}
		comp, ok := rows["compiled"]
		if !ok {
			fail("%s: no compiled-engine row", program)
		}
		for _, r := range []parseRow{base, comp} {
			if r.Inputs == 0 || r.NsPerAccept == 0 || r.SamplesPerSec == 0 {
				fail("%s/%s: incomplete measurement: %+v", program, r.Engine, r)
			}
			if r.AllocsPerOp == nil {
				fail("%s/%s: allocs/op not recorded", program, r.Engine)
			}
			if r.Agree == nil || !*r.Agree {
				fail("%s/%s: engines disagreed on membership verdicts", program, r.Engine)
			}
		}
		if comp.Ratio < 1 {
			fail("%s: compiled membership is slower than the map-based baseline (%.2fx)", program, comp.Ratio)
		}
		fmt.Printf("parsecheck: %s ok — compiled %.2fx vs baseline, %.2f MB/s, %.1f allocs/op\n",
			program, comp.Ratio, comp.MBps, *comp.AllocsPerOp)
	}
}
