// Command parsecheck validates a BENCH_parse.json artifact for CI: the
// file must be valid glade-bench -json output containing parse-figure
// rows for all three engines (the map-based parser baseline, the compiled
// Earley rung alone, and the full recognition ladder) on every measured
// program. The gates:
//
//   - every row reports verdict agreement with the reference parser, and
//     the compiled row reports full per-rung agreement (ladder, Earley
//     rung, and the prefilter's sound direction);
//   - the DFA prefilter's reject rate is above 0% — a dead prefilter
//     means the reject-fast rung silently stopped filtering;
//   - the ladder is not slower than the map-based baseline (ratio >= 1)
//     and not slower than its own Earley fallback rung (within a noise
//     tolerance) — a ladder that loses to its fallback is misrouting.
//
// It mirrors scripts/reportcheck so the parse-bench smoke needs no
// jq/python dependency.
//
// Usage:
//
//	go run ./scripts/parsecheck BENCH_parse.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// ladderSlack is how much slower than its own Earley rung the full ladder
// may measure before the gate trips — headroom for timer noise only.
const ladderSlack = 1.10

// parseRow mirrors the parse-figure fields of glade-bench's jsonRow.
type parseRow struct {
	Figure        string   `json:"figure"`
	Program       string   `json:"program"`
	Engine        string   `json:"engine"`
	Inputs        int      `json:"inputs"`
	MBps          float64  `json:"mbps"`
	NsPerAccept   float64  `json:"ns_per_accept"`
	AllocsPerOp   *float64 `json:"allocs_per_op"`
	SamplesPerSec float64  `json:"samples_per_sec"`
	Ratio         float64  `json:"ratio"`
	Agree         *bool    `json:"agree"`
	RungAgree     *bool    `json:"rung_agree"`
	DFARejectRate *float64 `json:"dfa_reject_rate"`
	VMShare       *float64 `json:"vm_share"`
	EarleyShare   *float64 `json:"earley_share"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: parsecheck BENCH_parse.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "parsecheck:", err)
		os.Exit(1)
	}
	var report struct {
		Results []parseRow `json:"results"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		fmt.Fprintf(os.Stderr, "parsecheck: report is not valid JSON: %v\n", err)
		os.Exit(1)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "parsecheck: "+format+"\n", args...)
		os.Exit(1)
	}
	engines := map[string]map[string]parseRow{} // program -> engine -> row
	for _, r := range report.Results {
		if r.Figure != "parse" {
			continue
		}
		if r.Program == "" || r.Engine == "" {
			fail("parse row missing program or engine: %+v", r)
		}
		if engines[r.Program] == nil {
			engines[r.Program] = map[string]parseRow{}
		}
		engines[r.Program][r.Engine] = r
	}
	if len(engines) == 0 {
		fail("no parse-figure rows found")
	}
	for program, rows := range engines {
		base, ok := rows["parser"]
		if !ok {
			fail("%s: no map-based baseline row", program)
		}
		earley, ok := rows["earley"]
		if !ok {
			fail("%s: no Earley-rung row", program)
		}
		comp, ok := rows["compiled"]
		if !ok {
			fail("%s: no compiled-ladder row", program)
		}
		for _, r := range []parseRow{base, earley, comp} {
			if r.Inputs == 0 || r.NsPerAccept == 0 {
				fail("%s/%s: incomplete measurement: %+v", program, r.Engine, r)
			}
			if r.AllocsPerOp == nil {
				fail("%s/%s: allocs/op not recorded", program, r.Engine)
			}
			if r.Agree == nil || !*r.Agree {
				fail("%s/%s: engine disagreed with the reference parser", program, r.Engine)
			}
		}
		// Sampling runs on the baseline and the compiled engine only.
		if base.SamplesPerSec == 0 || comp.SamplesPerSec == 0 {
			fail("%s: sampling throughput not measured", program)
		}
		if comp.RungAgree == nil || !*comp.RungAgree {
			fail("%s: per-rung verdicts disagreed (ladder vs Earley rung vs prefilter)", program)
		}
		if comp.DFARejectRate == nil || comp.VMShare == nil || comp.EarleyShare == nil {
			fail("%s: per-rung corpus shares not recorded", program)
		}
		if *comp.DFARejectRate <= 0 {
			fail("%s: DFA prefilter rejected 0%% of the corpus — the reject-fast rung is dead", program)
		}
		if comp.Ratio < 1 {
			fail("%s: ladder membership is slower than the map-based baseline (%.2fx)", program, comp.Ratio)
		}
		if comp.NsPerAccept > earley.NsPerAccept*ladderSlack {
			fail("%s: ladder (%.0f ns/accept) is slower than its own Earley rung (%.0f ns/accept)",
				program, comp.NsPerAccept, earley.NsPerAccept)
		}
		fmt.Printf("parsecheck: %s ok — ladder %.2fx vs baseline (earley rung %.2fx), %.2f MB/s, rungs dfa=%.0f%%/vm=%.0f%%/earley=%.0f%%\n",
			program, comp.Ratio, earley.Ratio, comp.MBps,
			100**comp.DFARejectRate, 100**comp.VMShare, 100**comp.EarleyShare)
	}
}
