// Command servecheck validates a BENCH_serve.json artifact for CI: the
// file must be valid glade-bench -json output containing serve-figure
// rows for both the 1-node and 3-node cluster sizes. The gates:
//
//   - every endpoint (generate, check, stats) was exercised at every
//     cluster size with QPS > 0 and an error rate below -max-errors;
//   - batch-check p99 latency stays under -p99 at every cluster size —
//     the endpoint exists to be the cheap high-QPS path, so a fat tail
//     means the ladder or the store cache regressed;
//   - 3-node batch-check work throughput (inputs/s) is at least
//     -min-ratio of the 1-node figure. On real deployments each node has
//     its own machine and the ratio should exceed 1; in CI every node
//     shares the runner's cores, so scaling cannot materialize and the
//     gate instead asserts that sharding overhead (ring routing, probers,
//     extra servers) stays bounded. Raise -min-ratio above 1 when running
//     against a genuinely multi-machine cluster.
//
// It mirrors scripts/parsecheck so the serve-bench smoke needs no
// jq/python dependency.
//
// Usage:
//
//	go run ./scripts/servecheck [-min-ratio 0.75] [-p99 250] [-max-errors 0.01] BENCH_serve.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// serveRow mirrors the serve-figure fields of glade-bench's jsonRow.
type serveRow struct {
	Figure       string  `json:"figure"`
	Nodes        int     `json:"nodes"`
	Endpoint     string  `json:"endpoint"`
	Clients      int     `json:"clients"`
	Requests     int     `json:"requests"`
	Errors       *int    `json:"errors"`
	QPS          float64 `json:"qps"`
	P99Ms        float64 `json:"p99_ms"`
	InputsPerSec float64 `json:"inputs_per_sec"`
}

func main() {
	minRatio := flag.Float64("min-ratio", 0.75, "minimum 3-node/1-node batch-check inputs/s ratio (below 1 tolerates shared-core CI; raise above 1 on real multi-machine clusters)")
	p99Bound := flag.Float64("p99", 250, "maximum batch-check p99 latency in milliseconds")
	maxErrors := flag.Float64("max-errors", 0.01, "maximum per-endpoint error rate")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: servecheck [flags] BENCH_serve.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "servecheck:", err)
		os.Exit(1)
	}
	var report struct {
		Results []serveRow `json:"results"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		fmt.Fprintf(os.Stderr, "servecheck: report is not valid JSON: %v\n", err)
		os.Exit(1)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "servecheck: "+format+"\n", args...)
		os.Exit(1)
	}

	rows := map[int]map[string]serveRow{} // nodes -> endpoint -> row
	for _, r := range report.Results {
		if r.Figure != "serve" {
			continue
		}
		if r.Nodes == 0 || r.Endpoint == "" {
			fail("serve row missing nodes or endpoint: %+v", r)
		}
		if rows[r.Nodes] == nil {
			rows[r.Nodes] = map[string]serveRow{}
		}
		rows[r.Nodes][r.Endpoint] = r
	}
	if len(rows) == 0 {
		fail("no serve-figure rows found")
	}

	for _, nodes := range []int{1, 3} {
		byEp, ok := rows[nodes]
		if !ok {
			fail("no %d-node rows — both cluster sizes must be measured", nodes)
		}
		for _, ep := range []string{"generate", "check", "stats"} {
			r, ok := byEp[ep]
			if !ok {
				fail("%d-node: endpoint %s was never exercised", nodes, ep)
			}
			if r.Requests == 0 || r.QPS <= 0 {
				fail("%d-node %s: no throughput measured: %+v", nodes, ep, r)
			}
			if r.Errors == nil {
				fail("%d-node %s: error count not recorded", nodes, ep)
			}
			if rate := float64(*r.Errors) / float64(r.Requests); rate > *maxErrors {
				fail("%d-node %s: error rate %.1f%% exceeds %.1f%%",
					nodes, ep, 100*rate, 100**maxErrors)
			}
		}
		if p99 := byEp["check"].P99Ms; p99 > *p99Bound {
			fail("%d-node check p99 %.1fms exceeds %.0fms", nodes, p99, *p99Bound)
		}
	}

	one, three := rows[1]["check"], rows[3]["check"]
	if one.InputsPerSec <= 0 || three.InputsPerSec <= 0 {
		fail("batch-check inputs/s not recorded (1-node %.0f, 3-node %.0f)",
			one.InputsPerSec, three.InputsPerSec)
	}
	ratio := three.InputsPerSec / one.InputsPerSec
	if ratio < *minRatio {
		fail("3-node batch-check throughput is %.2fx the 1-node figure (< %.2f): %.0f vs %.0f inputs/s",
			ratio, *minRatio, three.InputsPerSec, one.InputsPerSec)
	}
	fmt.Printf("servecheck: ok — check %.0f q/s / %.0f inputs/s 1-node, %.0f q/s / %.0f inputs/s 3-node (ratio %.2f), p99 %.1f/%.1f ms\n",
		one.QPS, one.InputsPerSec, three.QPS, three.InputsPerSec, ratio,
		one.P99Ms, three.P99Ms)
}
