// Command chaossmoke is the CI chaos smoke for the fault-tolerant oracle
// stack: it learns the sed and xml grammars through a FaultInjector that
// fails ~10% of oracle queries with transient errors, wrapped in the
// Resilient retry/breaker layer, and asserts that
//
//   - every learn completes with no abort at Workers 1 and 8,
//   - each learned grammar is byte-identical to the committed golden
//     (retries must never change a verdict, so injected faults cannot
//     perturb a single learner decision),
//   - retries actually happened (the injector really fired), and the
//     resilience instruments are present in the Prometheus exposition,
//   - a permanent failure (exec oracle whose binary does not exist) still
//     aborts promptly with the wrapped error and zero retries.
//
// Usage:
//
//	go run ./scripts/chaossmoke
package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"glade/internal/cfg"
	"glade/internal/core"
	"glade/internal/oracle"
	"glade/internal/programs"
	"glade/internal/telemetry"
)

// faultRate is the per-query probability of an injected transient fault.
const faultRate = 0.10

// maxAttempts bounds each query's retry loop. At a 10% fault rate the
// chance a single query exhausts 8 attempts is 1e-8, so a smoke run of a
// few hundred thousand queries aborts with probability ~1e-3 only if the
// injector misbehaves — any abort is a real finding.
const maxAttempts = 8

func main() {
	start := time.Now()
	ctx := context.Background()
	reg := telemetry.NewRegistry()
	met := oracle.NewResilientMetrics(reg, telemetry.L("source", "chaos"))

	var totalRetries uint64
	for _, name := range []string{"sed", "xml"} {
		p := programs.ByName(name)
		if p == nil {
			fatal("program %q missing", name)
		}
		seeds := p.Seeds()
		if len(seeds) > 4 {
			seeds = seeds[:4] // matches the committed goldens
		}
		for _, workers := range []int{1, 8} {
			base := oracle.Func(func(s string) bool { return p.Run(s).OK })
			inj := oracle.NewFaultInjector(base, oracle.FaultOptions{
				Seed:          1,
				TransientRate: faultRate,
			})
			res := oracle.NewResilient(inj, oracle.ResilientOptions{
				Retry: oracle.RetryPolicy{
					MaxAttempts: maxAttempts,
					BaseDelay:   100 * time.Microsecond,
					MaxDelay:    time.Millisecond,
				},
				// High enough that a 10% fault rate cannot plausibly
				// produce the consecutive-failure run that opens it:
				// retries reset the streak, so the smoke exercises the
				// breaker's bookkeeping without ever tripping it.
				Breaker: oracle.BreakerPolicy{Threshold: 32},
				Workers: workers,
				Metrics: met,
			})
			golden := filepath.Join("internal", "core", "testdata",
				fmt.Sprintf("golden_%s_w%d.grammar", name, workers))
			want, err := os.ReadFile(golden)
			if err != nil {
				fatal("missing golden: %v", err)
			}
			opts := core.DefaultOptions()
			opts.Workers = workers
			lr, err := core.Learn(ctx, seeds, res, opts)
			if err != nil {
				fatal("%s workers=%d aborted under %.0f%% fault injection: %v",
					name, workers, faultRate*100, err)
			}
			if got := cfg.Marshal(lr.Grammar); got != string(want) {
				fatal("%s workers=%d: grammar drifted from %s under fault injection — a retry changed a verdict",
					name, workers, golden)
			}
			st := res.Stats()
			if st.Retries == 0 {
				fatal("%s workers=%d: no retries recorded — the injector never fired", name, workers)
			}
			if st.BreakerOpens != 0 || st.State != "closed" {
				fatal("%s workers=%d: breaker churned (opens=%d state=%s) under a fault rate that must not trip it",
					name, workers, st.BreakerOpens, st.State)
			}
			totalRetries += st.Retries
			fmt.Printf("chaos: %s workers=%d ok (%d queries, %d injected faults, %d retries, grammar identical)\n",
				name, workers, lr.Stats.OracleQueries, inj.Injected(), st.Retries)
		}
	}

	// The instruments the chaos runs fed must surface in the exposition.
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		fatal("WritePrometheus: %v", err)
	}
	for _, series := range []string{
		`glade_oracle_retries_total{source="chaos"}`,
		`glade_oracle_breaker_opens_total{source="chaos"}`,
		`glade_oracle_breaker_state{source="chaos"}`,
	} {
		if !strings.Contains(sb.String(), series) {
			fatal("metrics exposition is missing %s", series)
		}
	}

	// Permanent failures must not be retried into a hang: an exec oracle
	// whose binary does not exist aborts on the first attempt.
	missing := filepath.Join(os.TempDir(), "chaossmoke-no-such-binary")
	perm := oracle.NewResilient(&oracle.Exec{Argv: []string{missing}}, oracle.ResilientOptions{
		Retry: oracle.RetryPolicy{MaxAttempts: maxAttempts, BaseDelay: 50 * time.Millisecond},
	})
	permStart := time.Now()
	if _, err := perm.Check(ctx, "x"); err == nil {
		fatal("missing-binary exec oracle returned no error")
	} else if elapsed := time.Since(permStart); elapsed > 2*time.Second {
		fatal("permanent exec failure took %v — it was retried instead of aborting", elapsed)
	}
	if st := perm.Stats(); st.Retries != 0 {
		fatal("permanent exec failure was retried %d times", st.Retries)
	}
	fmt.Printf("chaos: permanent exec failure aborted promptly with zero retries\n")

	fmt.Printf("chaossmoke: ok (%d total retries across 4 learns, %.1fs)\n",
		totalRetries, time.Since(start).Seconds())
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "chaossmoke: "+format+"\n", args...)
	os.Exit(1)
}
