// Command oraclecheck validates a BENCH_oracle.json artifact for CI: the
// file must be valid glade-bench -json output containing oracle-figure
// rows for both modes, it must include a Workers=1 measurement, and the
// in-process builtin oracle must be at least 50x faster than the
// equivalent exec oracle at every measured worker count — the headline
// property of the oracle registry. It mirrors scripts/parsecheck so the
// oracle-bench smoke needs no jq/python dependency.
//
// Usage:
//
//	go run ./scripts/oraclecheck BENCH_oracle.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
)

// minSpeedup is the gate: in-process membership must beat spawning a
// process per query by at least this factor (real runs show 3-4 orders
// of magnitude; 50x leaves room for loaded CI machines).
const minSpeedup = 50.0

// oracleRow mirrors the oracle-figure fields of glade-bench's jsonRow.
type oracleRow struct {
	Figure  string  `json:"figure"`
	Oracle  string  `json:"oracle"`
	Mode    string  `json:"mode"`
	Workers int     `json:"workers"`
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	Speedup float64 `json:"speedup"`
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: oraclecheck BENCH_oracle.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "oraclecheck:", err)
		os.Exit(1)
	}
	var report struct {
		Results []oracleRow `json:"results"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		fmt.Fprintf(os.Stderr, "oraclecheck: report is not valid JSON: %v\n", err)
		os.Exit(1)
	}
	fail := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "oraclecheck: "+format+"\n", args...)
		os.Exit(1)
	}
	// qps[workers][mode] for every oracle-figure row.
	qps := map[int]map[string]float64{}
	for _, r := range report.Results {
		if r.Figure != "oracle" {
			continue
		}
		if r.Mode != "builtin" && r.Mode != "exec" {
			fail("row for %q has mode %q, want builtin or exec", r.Oracle, r.Mode)
		}
		if r.Workers < 1 || r.Queries <= 0 || r.QPS <= 0 {
			fail("%s row at workers=%d is degenerate: queries=%d qps=%.0f",
				r.Mode, r.Workers, r.Queries, r.QPS)
		}
		if qps[r.Workers] == nil {
			qps[r.Workers] = map[string]float64{}
		}
		if _, dup := qps[r.Workers][r.Mode]; dup {
			fail("duplicate %s row at workers=%d", r.Mode, r.Workers)
		}
		qps[r.Workers][r.Mode] = r.QPS
	}
	if len(qps) == 0 {
		fail("no oracle-figure rows (was glade-bench run with -fig oracle -json?)")
	}
	if qps[1] == nil {
		fail("no Workers=1 measurement: the headline comparison is sequential")
	}
	checked := 0
	for w, modes := range qps {
		b, okB := modes["builtin"]
		e, okE := modes["exec"]
		if !okB || !okE {
			fail("workers=%d measured only one mode (builtin=%v exec=%v)", w, okB, okE)
		}
		if ratio := b / e; ratio < minSpeedup {
			fail("workers=%d: builtin %.0f q/s is only %.1fx exec %.0f q/s (gate: %.0fx)",
				w, b, ratio, e, minSpeedup)
		}
		checked++
	}
	fmt.Printf("oraclecheck: ok (%d worker counts, workers=1 speedup %.0fx)\n",
		checked, qps[1]["builtin"]/qps[1]["exec"])
}
