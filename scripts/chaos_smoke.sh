#!/usr/bin/env bash
# chaos_smoke.sh — CI smoke for the fault-tolerant oracle stack: learn the
# sed and xml grammars at Workers 1 and 8 through a deterministic ~10%
# transient-fault injector wrapped in the Resilient retry/breaker layer,
# and assert zero aborts, byte-identical grammars against the committed
# goldens, retries recorded in the resilience metrics, and prompt abort on
# a permanent failure (missing exec binary). All assertions live in
# scripts/chaossmoke; this wrapper only pins the working directory.
#
# Usage: scripts/chaos_smoke.sh
set -eu

cd "$(dirname "$0")/.."

echo "== chaos smoke: learning under fault injection =="
go run ./scripts/chaossmoke
echo "== chaos smoke passed =="
