// Command doccheck verifies that every exported identifier in the given
// package directories carries a doc comment: package clause, exported
// types, functions, methods, and exported const/var specs (a grouped decl's
// comment covers its specs). CI runs it over the public facade and the
// service/campaign packages; it exits non-zero listing every bare export.
//
// Usage:
//
//	go run ./scripts/doccheck DIR...
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck DIR...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += checkDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d exported identifiers lack doc comments\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test .go file in dir and reports undocumented
// exports.
func checkDir(dir string) int {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		fmt.Fprintf(os.Stderr, "doccheck: %s: %v\n", dir, err)
		return 1
	}
	bad := 0
	for _, pkg := range pkgs {
		pkgDocumented := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				pkgDocumented = true
			}
		}
		if !pkgDocumented {
			fmt.Printf("%s: package %s has no package comment\n", dir, pkg.Name)
			bad++
		}
		for name, f := range pkg.Files {
			bad += checkFile(fset, filepath.Base(name), f)
		}
	}
	return bad
}

// checkFile reports undocumented exported top-level declarations in f.
func checkFile(fset *token.FileSet, name string, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, what string) {
		fmt.Printf("%s:%d: %s has no doc comment\n", name, fset.Position(pos).Line, what)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			what := "func " + d.Name.Name
			if d.Recv != nil {
				what = "method " + recvName(d.Recv) + "." + d.Name.Name
			}
			report(d.Pos(), what)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					if sp.Name.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
						report(sp.Pos(), "type "+sp.Name.Name)
					}
				case *ast.ValueSpec:
					for _, id := range sp.Names {
						// A doc comment on the grouped decl, the spec, or a
						// trailing line comment all count.
						if id.IsExported() && d.Doc == nil && sp.Doc == nil && sp.Comment == nil {
							report(id.Pos(), "const/var "+id.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// recvName renders a method receiver's type name.
func recvName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return "?"
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return "?"
		}
	}
}
