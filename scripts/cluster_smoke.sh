#!/usr/bin/env bash
# End-to-end smoke of cluster mode, as run by CI: start three glade-serve
# daemons joined by -peers, submit a learn job through one node, poll it
# through another, fetch the grammar byte-identically from all three
# (ownership routing proxies to wherever it lives), batch-check generated
# inputs through a non-owner, then kill a peer and verify the survivors
# mark it unhealthy and keep accepting jobs whose minted ids hash to the
# dead node (ring failover). Requires curl + jq.
set -euo pipefail
cd "$(dirname "$0")/.."

DATA=$(mktemp -d)
PIDS=()

go build -o "$DATA/glade-serve" ./cmd/glade-serve
cleanup() {
  for pid in "${PIDS[@]:-}"; do
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
  done
  wait 2>/dev/null || true
  rm -rf "$DATA"
}
trap cleanup EXIT

# Pick three random ports and boot the full peer set; if any node fails to
# answer /healthz (e.g. a port was taken on a shared runner), tear the set
# down and retry with fresh ports.
ADDRS=()
for attempt in 1 2 3 4 5; do
  ADDRS=()
  for i in 1 2 3; do
    ADDRS+=("127.0.0.1:$(( (RANDOM % 20000) + 20000 ))")
  done
  PEERS=$(IFS=,; echo "${ADDRS[*]}")
  PIDS=()
  for i in 0 1 2; do
    "$DATA/glade-serve" -addr "${ADDRS[$i]}" -data "$DATA/node$i" \
      -peers "$PEERS" >"$DATA/node$i.log" 2>&1 &
    PIDS+=($!)
  done
  UP=0
  for addr in "${ADDRS[@]}"; do
    for _ in $(seq 1 50); do
      curl -sf "http://$addr/healthz" >/dev/null 2>&1 && { UP=$((UP+1)); break; }
      sleep 0.2
    done
  done
  [ "$UP" = 3 ] && break
  for pid in "${PIDS[@]}"; do kill "$pid" 2>/dev/null || true; done
  wait 2>/dev/null || true
  PIDS=()
done
[ "${#PIDS[@]}" = 3 ] || { echo "cluster never came up"; cat "$DATA"/node*.log; exit 1; }
echo "== cluster up: ${ADDRS[*]}"

echo "== /v1/cluster converges on full healthy membership"
# A node that probed its peers before they finished binding holds the
# failure until the next probe tick, so poll for convergence.
NHEALTHY=0
for _ in $(seq 1 30); do
  STATUS=$(curl -sf "http://${ADDRS[0]}/v1/cluster")
  NHEALTHY=$(echo "$STATUS" | jq -er '[.peers[] | select(.healthy)] | length')
  [ "$NHEALTHY" = 3 ] && break
  sleep 0.5
done
[ "$NHEALTHY" = 3 ] || {
  echo "expected 3 healthy peers, got $NHEALTHY"; echo "$STATUS" | jq .; exit 1;
}

echo "== submit learn job (builtin:json) via node 0"
HDRS="$DATA/submit.hdrs"
JOB=$(curl -sf -D "$HDRS" -X POST "http://${ADDRS[0]}/v1/jobs" \
  -d '{"oracle":{"type":"builtin","name":"json"}}')
ID=$(echo "$JOB" | jq -er .id)
OWNER=$(tr -d '\r' <"$HDRS" | awk 'tolower($1) == "x-glade-node:" {print $2}')
echo "job $ID owned by $OWNER"
[ -n "$OWNER" ] || { echo "no X-Glade-Node header on submit"; cat "$HDRS"; exit 1; }

echo "== poll to completion via node 1"
STATE=queued
for _ in $(seq 1 120); do
  STATE=$(curl -sf "http://${ADDRS[1]}/v1/jobs/$ID" | jq -er .state) || { sleep 1; continue; }
  [ "$STATE" = done ] || [ "$STATE" = failed ] && break
  sleep 1
done
[ "$STATE" = done ] || {
  echo "job ended in state $STATE"; cat "$DATA"/node*.log | tail -40; exit 1;
}

echo "== grammar is byte-identical from every node"
curl -sf "http://${ADDRS[0]}/v1/grammars/$ID" >"$DATA/g0"
curl -sf "http://${ADDRS[1]}/v1/grammars/$ID" >"$DATA/g1"
curl -sf "http://${ADDRS[2]}/v1/grammars/$ID" >"$DATA/g2"
cmp -s "$DATA/g0" "$DATA/g1" && cmp -s "$DATA/g0" "$DATA/g2" || {
  echo "grammar differs across nodes"; exit 1;
}
[ -s "$DATA/g0" ] || { echo "empty grammar"; exit 1; }

echo "== batch-check generated inputs via a non-owner node"
INPUTS=$(curl -sf -X POST "http://${ADDRS[2]}/v1/grammars/$ID/generate?n=5" | jq -c .inputs)
CHECK=$(curl -sf -X POST "http://${ADDRS[1]}/v1/grammars/$ID/check" \
  -d "{\"inputs\":$INPUTS}")
ACCEPTED=$(echo "$CHECK" | jq -er .accepted)
COUNT=$(echo "$CHECK" | jq -er .count)
echo "$ACCEPTED/$COUNT inputs accepted"
[ "$COUNT" = 5 ] || { echo "expected 5 verdicts"; echo "$CHECK" | jq .; exit 1; }

echo "== kill a non-owner peer and verify failover"
VICTIM_IDX=""
for i in 0 1 2; do
  [ "${ADDRS[$i]}" != "$OWNER" ] && { VICTIM_IDX=$i; break; }
done
SURVIVOR="$OWNER"
kill "${PIDS[$VICTIM_IDX]}"
wait "${PIDS[$VICTIM_IDX]}" 2>/dev/null || true
PIDS[$VICTIM_IDX]=""
echo "killed ${ADDRS[$VICTIM_IDX]}, driving via $SURVIVOR"

# The grammar must stay fetchable through the surviving entry nodes.
curl -sf "http://$SURVIVOR/v1/grammars/$ID" >"$DATA/g-after"
cmp -s "$DATA/g0" "$DATA/g-after" || { echo "grammar changed after peer death"; exit 1; }

# New submissions keep working even when the minted id hashes to the dead
# peer: the router marks it down on the first failed proxy and fails the
# key over to the next ring position. Several submissions make it
# overwhelmingly likely at least one id lands on the dead node.
for _ in 1 2 3 4; do
  JID=$(curl -sf -X POST "http://$SURVIVOR/v1/jobs" \
    -d '{"oracle":{"type":"builtin","name":"json"}}' | jq -er .id)
  [ -n "$JID" ] || { echo "submit failed after peer death"; exit 1; }
done
echo "4 post-failure submissions accepted"

# The survivors' health view must converge on the dead peer.
DEAD_SEEN=""
for _ in $(seq 1 30); do
  UNHEALTHY=$(curl -sf "http://$SURVIVOR/v1/cluster" |
    jq -er "[.peers[] | select(.addr == \"${ADDRS[$VICTIM_IDX]}\" and (.healthy | not))] | length")
  [ "$UNHEALTHY" = 1 ] && { DEAD_SEEN=1; break; }
  sleep 0.5
done
[ -n "$DEAD_SEEN" ] || { echo "dead peer never marked unhealthy"; exit 1; }
echo "dead peer marked unhealthy in /v1/cluster"
echo "cluster smoke OK"
