package glade

import (
	"math/rand"
	"strings"
	"testing"

	"glade/internal/bytesets"
)

// dyck is the oracle used across facade tests: balanced parentheses.
func dyck(s string) bool {
	d := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '(':
			d++
		case ')':
			d--
			if d < 0 {
				return false
			}
		default:
			return false
		}
	}
	return d == 0
}

func learnDyck(t *testing.T) *Result {
	t.Helper()
	opts := DefaultOptions()
	opts.GenAlphabet = bytesets.OfString("()")
	res, err := Learn([]string{"(())"}, OracleFunc(dyck), opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestFacadeLearnParserSampler(t *testing.T) {
	res := learnDyck(t)
	p := NewParser(res.Grammar)
	if !p.Accepts("((()))()") || p.Accepts(")(") {
		t.Fatal("facade parser wrong")
	}
	sm := NewSampler(res.Grammar, 16)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if s := sm.Sample(rng); !dyck(s) {
			t.Fatalf("facade sampler produced invalid %q", s)
		}
	}
	if s := Sample(res.Grammar, rng); !dyck(s) {
		t.Fatalf("Sample produced invalid %q", s)
	}
}

func TestFacadeFuzzers(t *testing.T) {
	res := learnDyck(t)
	gf := NewGrammarFuzzer(res.Grammar, []string{"(())"})
	nf := NewNaiveFuzzer([]string{"(())"}, []byte("()"))
	rng := rand.New(rand.NewSource(2))
	gValid, nValid := 0, 0
	for i := 0; i < 200; i++ {
		if dyck(gf.Next(rng)) {
			gValid++
		}
		if dyck(nf.Next(rng)) {
			nValid++
		}
	}
	if gValid != 200 {
		t.Fatalf("grammar fuzzer escaped the exact language: %d/200 valid", gValid)
	}
	if nValid >= gValid {
		t.Fatalf("naive fuzzer validity %d >= grammar fuzzer %d", nValid, gValid)
	}
}

// TestLearnDeterministic: identical inputs and options must give an
// identical grammar (the learner's internal sampling is seeded).
func TestLearnDeterministic(t *testing.T) {
	a := learnDyck(t)
	b := learnDyck(t)
	if a.Grammar.String() != b.Grammar.String() {
		t.Fatal("learning is nondeterministic")
	}
	if a.Stats.OracleQueries != b.Stats.OracleQueries {
		t.Fatalf("query counts differ: %d vs %d", a.Stats.OracleQueries, b.Stats.OracleQueries)
	}
}

// TestSeedsAlwaysCovered: for a spread of oracles, every accepted seed is in
// the learned language — the monotonicity guarantee surfaced end to end.
func TestSeedsAlwaysCovered(t *testing.T) {
	oracles := map[string]func(string) bool{
		"dyck":     dyck,
		"even":     func(s string) bool { return len(s)%2 == 0 },
		"anything": func(s string) bool { return true },
		"no-xx":    func(s string) bool { return !strings.Contains(s, "xx") },
	}
	seedSets := [][]string{
		{"(())"},
		{"()", "(())()"},
		{"xyxy", "yy"},
	}
	for name, o := range oracles {
		for _, seeds := range seedSets {
			ok := true
			for _, s := range seeds {
				if !o(s) {
					ok = false
				}
			}
			if !ok {
				continue
			}
			opts := DefaultOptions()
			opts.GenAlphabet = bytesets.OfString("()xy")
			res, err := Learn(seeds, OracleFunc(o), opts)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			p := NewParser(res.Grammar)
			for _, s := range seeds {
				if !p.Accepts(s) {
					t.Fatalf("%s: seed %q missing from learned language", name, s)
				}
			}
		}
	}
}

func TestRegexExposed(t *testing.T) {
	res := learnDyck(t)
	if res.Regex == nil {
		t.Fatal("phase-one regex not exposed")
	}
}
