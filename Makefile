# Mirrors .github/workflows/ci.yml so contributors can run CI locally:
#   make        -> build
#   make ci     -> everything the workflow runs
.PHONY: all build test lint bench fuzz chaos ci

all: build

# Compile every package and command.
build:
	go build ./...

# Run the full test suite with the race detector, as CI does.
test:
	go test -race ./...

# Formatting and static checks (gofmt + go vet + doc-comment, API-lock,
# and markdown-link checks; no external linters).
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	go vet ./...
	go run ./scripts/doccheck . internal/service internal/fuzz internal/campaign internal/oracle internal/oracle/registry internal/metrics internal/core internal/telemetry internal/cluster internal/loadgen
	go run ./scripts/apilock
	./scripts/linkcheck.sh

# One pass over every benchmark — the paper's figures at reduced scale plus
# the parallel-engine speedup and the compiled-parser comparison — as a
# smoke test, then machine-readable emissions so the repo accumulates
# BENCH_*.json trajectory artifacts. parsecheck fails the run if the
# compiled engine ever regresses below the map-based baseline, and
# oraclecheck if the in-process oracle registry loses its >=50x edge over
# exec oracles, and telemetrycheck if the observability stack or the
# resilient wrapper's no-fault fast path costs more than a few percent of
# bare oracle dispatch, and servecheck if the sharded serving stack's
# batch-check path loses throughput, grows a fat latency tail, or errors
# under closed-loop load. Full runs: cmd/glade-bench.
bench:
	go test -run=NONE -bench=. -benchtime=1x ./...
	go run ./cmd/glade-bench -quick -fig speedup -qdelay 50us -json BENCH_speedup.json
	go run ./cmd/glade-bench -quick -fig parse -json BENCH_parse.json
	go run ./scripts/parsecheck BENCH_parse.json
	go run ./cmd/glade-bench -quick -fig oracle -json BENCH_oracle.json
	go run ./scripts/oraclecheck BENCH_oracle.json
	go run ./cmd/glade-bench -quick -fig telemetry -json BENCH_telemetry.json
	go run ./scripts/telemetrycheck BENCH_telemetry.json
	go run ./cmd/glade-bench -quick -fig serve -json BENCH_serve.json
	go run ./scripts/servecheck BENCH_serve.json

# Longer local runs of the native fuzz targets that lock down the
# recognition ladder (differential verdicts across all rungs) and the
# grammar wire format (Unmarshal/Marshal/Compile round trip). CI runs the
# same targets at a 30s smoke budget; override with FUZZTIME=10m etc.
FUZZTIME ?= 2m
fuzz:
	go test ./internal/cfg -run='^$$' -fuzz='^FuzzAcceptsDifferential$$' -fuzztime=$(FUZZTIME)
	go test ./internal/cfg -run='^$$' -fuzz='^FuzzCompileRoundTrip$$' -fuzztime=$(FUZZTIME)

# Chaos smoke for the fault-tolerant oracle stack: learn sed and xml
# through a deterministic ~10% transient-fault injector and assert zero
# aborts with byte-identical grammars (retries never change a verdict).
chaos:
	./scripts/chaos_smoke.sh

ci: lint build test bench chaos
