// Sedfuzz reproduces the §8.3 pipeline on the simulated sed program:
// synthesize a grammar for sed scripts from the bundled seeds, then fuzz
// with the grammar-based fuzzer and compare coverage against the naive
// baseline.
package main

import (
	"context"
	"fmt"
	"math/rand"

	"glade"
	"glade/internal/fuzz"
	"glade/internal/oracle"
	"glade/internal/programs"
)

func main() {
	p := programs.Sed()
	seeds := p.Seeds()
	o := oracle.Func(func(s string) bool { return p.Run(s).OK })

	res, err := glade.LearnContext(context.Background(), seeds, o, glade.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("synthesized sed grammar: %d symbols, %d oracle queries, %v\n\n",
		res.Grammar.Size(), res.Stats.OracleQueries, res.Stats.Duration)

	const n = 20000
	naive := fuzz.RunCoverage(p, glade.NewNaiveFuzzer(seeds, nil), n, rand.New(rand.NewSource(1)), 0)
	gf := glade.NewGrammarFuzzer(res.Grammar, seeds)
	gl := fuzz.RunCoverage(p, gf, n, rand.New(rand.NewSource(1)), 0)

	fmt.Printf("%-8s %8s %8s %10s\n", "fuzzer", "valid", "incrcov", "normalized")
	fmt.Printf("%-8s %8d %8d %10.2f\n", "naive", naive.Valid, naive.IncrCover, 1.0)
	fmt.Printf("%-8s %8d %8d %10.2f\n", "glade", gl.Valid, gl.IncrCover, gl.Normalized(naive))

	fmt.Println("\nExample generated sed scripts:")
	rng := rand.New(rand.NewSource(2))
	shown := 0
	for shown < 5 {
		s := gf.Next(rng)
		if p.Run(s).OK && len(s) < 60 {
			fmt.Printf("  %q\n", s)
			shown++
		}
	}
}
