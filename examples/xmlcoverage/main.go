// Xmlcoverage runs the full three-fuzzer §8.3 comparison on the simulated
// XML parser, including the coverage-over-time curve of Figure 7(c).
package main

import (
	"context"
	"fmt"
	"math/rand"

	"glade"
	"glade/internal/fuzz"
	"glade/internal/oracle"
	"glade/internal/programs"
)

func main() {
	p := programs.XML()
	seeds := p.Seeds()
	o := oracle.Func(func(s string) bool { return p.Run(s).OK })

	res, err := glade.LearnContext(context.Background(), seeds, o, glade.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("synthesized grammar for %s: %d symbols, %d merges\n\n",
		p.Name(), res.Grammar.Size(), res.Stats.Merged)

	const n = 20000
	const every = 4000
	runs := []fuzz.CoverageRun{
		fuzz.RunCoverage(p, fuzz.NewNaive(seeds, nil), n, rand.New(rand.NewSource(3)), every),
		fuzz.RunCoverage(p, fuzz.NewAFL(seeds), n, rand.New(rand.NewSource(3)), every),
		fuzz.RunCoverage(p, fuzz.NewGrammar(res.Grammar, seeds), n, rand.New(rand.NewSource(3)), every),
	}
	base := runs[0]
	fmt.Printf("%-8s %8s %8s %10s\n", "fuzzer", "valid", "incrcov", "normalized")
	for _, r := range runs {
		fmt.Printf("%-8s %8d %8d %10.2f\n", r.Fuzzer, r.Valid, r.IncrCover, r.Normalized(base))
	}

	fmt.Println("\ncoverage over time (incremental points):")
	fmt.Printf("%8s", "samples")
	for _, r := range runs {
		fmt.Printf(" %8s", r.Fuzzer)
	}
	fmt.Println()
	for i := range runs[0].Curve {
		fmt.Printf("%8d", runs[0].Curve[i].Samples)
		for _, r := range runs {
			fmt.Printf(" %8d", r.Curve[i].IncrCover)
		}
		fmt.Println()
	}

	fmt.Println("\na generated XML document:")
	gf := glade.NewGrammarFuzzer(res.Grammar, seeds)
	rng := rand.New(rand.NewSource(4))
	for {
		s := gf.Next(rng)
		if p.Run(s).OK && len(s) > 40 && len(s) < 400 {
			fmt.Println(s)
			break
		}
	}
}
