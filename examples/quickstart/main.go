// Quickstart walks the paper's running example (Figures 1-3): starting from
// the single seed <a>hi</a> and a membership oracle for the XML-like
// language A → (a + ... + z + <a>A</a>)*, GLADE synthesizes the full
// recursive grammar, printing every generalization step along the way.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"glade"
)

// valid recognizes L(CXML) from Figure 1 of the paper.
func valid(s string) bool {
	depth := 0
	for i := 0; i < len(s); {
		switch {
		case strings.HasPrefix(s[i:], "<a>"):
			depth++
			i += 3
		case strings.HasPrefix(s[i:], "</a>"):
			depth--
			if depth < 0 {
				return false
			}
			i += 4
		case s[i] >= 'a' && s[i] <= 'z':
			i++
		default:
			return false
		}
	}
	return depth == 0
}

func main() {
	opts := glade.DefaultOptions()
	opts.Logf = func(format string, args ...any) { fmt.Printf("  "+format+"\n", args...) }

	fmt.Println("Learning from seed \"<a>hi</a>\" (Figure 2 trace):")
	res, err := glade.LearnContext(context.Background(), []string{"<a>hi</a>"},
		glade.AsCheckOracle(glade.OracleFunc(valid)), opts)
	if err != nil {
		panic(err)
	}

	fmt.Println("\nSynthesized grammar:")
	fmt.Println(res.Grammar.Trim())
	fmt.Printf("Stats: %d oracle queries, %d candidates, %d merges, %v\n\n",
		res.Stats.OracleQueries, res.Stats.Candidates, res.Stats.Merged, res.Stats.Duration)

	// The learned language is recursive: nested tags parse even though the
	// seed had none.
	parser := glade.NewParser(res.Grammar)
	for _, s := range []string{"<a><a>deep</a></a>", "xyz", "<a>", "<b></b>"} {
		fmt.Printf("  parses %-22q = %v (oracle: %v)\n", s, parser.Accepts(s), valid(s))
	}

	fmt.Println("\nSamples from the synthesized grammar:")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 5; i++ {
		fmt.Printf("  %q\n", glade.Sample(res.Grammar, rng))
	}
}
