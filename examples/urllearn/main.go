// Urllearn learns the URL language of §8.2 from a handful of
// documentation-style seeds, evaluates precision against the oracle, and
// prints the synthesized grammar — the Figure 5 experience at example
// scale.
package main

import (
	"context"
	"fmt"
	"math/rand"

	"glade"
	"glade/internal/targets"
)

func main() {
	tgt := targets.URL()
	rng := rand.New(rand.NewSource(7))
	seeds := append(tgt.DocSeeds, tgt.SampleSeeds(rng, 8)...)
	fmt.Println("Seeds:")
	for _, s := range seeds {
		fmt.Printf("  %s\n", s)
	}

	res, err := glade.LearnContext(context.Background(), seeds, glade.AsCheckOracle(tgt.Oracle), glade.DefaultOptions())
	if err != nil {
		panic(err)
	}
	fmt.Println("\nSynthesized grammar:")
	fmt.Println(res.Grammar.Trim())

	// Estimate precision: how many sampled strings does the real oracle
	// accept?
	ok := 0
	const n = 300
	for i := 0; i < n; i++ {
		if tgt.Oracle.Accepts(glade.Sample(res.Grammar, rng)) {
			ok++
		}
	}
	fmt.Printf("precision over %d samples: %.2f\n", n, float64(ok)/n)

	fmt.Println("\nSome generated URLs:")
	for i := 0; i < 6; i++ {
		fmt.Printf("  %q\n", glade.Sample(res.Grammar, rng))
	}
}
