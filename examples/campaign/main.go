// Command campaign runs a 10-second fuzzing campaign against the built-in
// grep program: it synthesizes a grammar from grep's bundled seeds, then
// drives waves of grammar-fuzzed and mutated inputs through the oracle,
// triaging interesting ones into the bucketed corpus and writing a JSON
// report.
//
//	go run ./examples/campaign
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"glade/internal/bench"
	"glade/internal/campaign"
	"glade/internal/oracle"
	"glade/internal/programs"
)

func main() {
	p := programs.ByName("grep")

	// Synthesize the grammar from grep's bundled documentation seeds —
	// the same learn step `glade -program grep` performs.
	res, err := bench.LearnProgram(context.Background(), p, 30*time.Second, 4)
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
	fmt.Printf("learned grammar: %d symbols, %d oracle queries, %.2fs\n",
		res.Grammar.Size(), res.Stats.OracleQueries, res.Stats.Duration.Seconds())

	c, err := campaign.New(campaign.Config{
		Grammar:    res.Grammar,
		Seeds:      p.Seeds(),
		Oracle:     oracle.Func(func(s string) bool { return p.Run(s).OK }),
		Workers:    4,
		Duration:   10 * time.Second,
		ReportPath: "campaign-report.json",
		Progress: func(rep campaign.Report) {
			fmt.Printf("  %5.1fs  %7d inputs  %5d interesting\n",
				rep.ElapsedSeconds, rep.Inputs, rep.Interesting())
		},
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}

	fmt.Println("running a 10-second campaign against grep...")
	rep, err := c.Run(context.Background())
	if err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}

	fmt.Printf("\n%d waves, %d inputs (%d accepted, %d rejected)\n",
		rep.Waves, rep.Inputs, rep.Accepted, rep.Rejected)
	fmt.Printf("%-12s %8s\n", "bucket", "found")
	for _, b := range campaign.Buckets() {
		fmt.Printf("%-12s %8d\n", b, rep.Buckets[b])
	}
	fmt.Printf("oracle: %s\n", rep.Queries)
	fmt.Println("report written to campaign-report.json")

	// A few of the corpus's accept flips — inputs grep accepts that the
	// synthesized grammar does not generate (where it under-approximates).
	shown := 0
	for i := len(rep.Corpus) - 1; i >= 0 && shown < 5; i-- {
		if rep.Corpus[i].Bucket == campaign.BucketAcceptFlip {
			fmt.Printf("  accept flip: %q\n", rep.Corpus[i].Input)
			shown++
		}
	}
}
