package glade

import (
	"math/rand"
	"strings"
	"testing"
	"time"

	"glade/internal/bytesets"
	"glade/internal/fuzz"
	"glade/internal/oracle"
	"glade/internal/programs"
	"glade/internal/targets"
)

// TestEndToEndXMLTarget runs the whole pipeline through the public facade:
// learn the §8.2 XML target from documentation seeds, check key properties
// of the result, and fuzz with the synthesized grammar.
func TestEndToEndXMLTarget(t *testing.T) {
	tgt := targets.XML()
	opts := DefaultOptions()
	opts.Timeout = 60 * time.Second
	res, err := Learn(tgt.DocSeeds, tgt.Oracle, opts)
	if err != nil {
		t.Fatal(err)
	}
	parser := NewParser(res.Grammar)
	// Recursion learned from flat seeds: deeper nesting than any seed.
	if !parser.Accepts("<a><a><a>deep</a></a></a>") {
		t.Error("nested elements rejected; phase 2 failed end-to-end")
	}
	// Fuzz: the grammar fuzzer must produce valid inputs far more often
	// than the naive baseline (the paper's core fuzzing claim).
	fz := NewGrammarFuzzer(res.Grammar, tgt.DocSeeds)
	naive := NewNaiveFuzzer(tgt.DocSeeds, nil)
	rng := rand.New(rand.NewSource(5))
	gValid, nValid := 0, 0
	for i := 0; i < 300; i++ {
		if tgt.Oracle.Accepts(fz.Next(rng)) {
			gValid++
		}
		if tgt.Oracle.Accepts(naive.Next(rng)) {
			nValid++
		}
	}
	if gValid < 60 || gValid < 3*nValid {
		t.Errorf("grammar fuzzer validity %d/300 vs naive %d/300", gValid, nValid)
	}
}

// TestEndToEndProgramPipeline mirrors §8.3 on the simulated sed program:
// synthesize from bundled seeds, fuzz, and compare against the naive
// baseline.
func TestEndToEndProgramPipeline(t *testing.T) {
	p := programs.Sed()
	o := OracleFunc(func(s string) bool { return p.Run(s).OK })
	opts := DefaultOptions()
	opts.Timeout = 60 * time.Second
	res, err := Learn(p.Seeds(), o, opts)
	if err != nil {
		t.Fatal(err)
	}
	n := 4000
	naive := fuzz.RunCoverage(p, NewNaiveFuzzer(p.Seeds(), nil), n, rand.New(rand.NewSource(1)), 0)
	gl := fuzz.RunCoverage(p, NewGrammarFuzzer(res.Grammar, p.Seeds()), n, rand.New(rand.NewSource(1)), 0)
	if gl.Valid <= naive.Valid {
		t.Errorf("grammar fuzzer produced fewer valid inputs (%d) than naive (%d)", gl.Valid, naive.Valid)
	}
	if gl.IncrCover == 0 {
		t.Error("grammar fuzzer found no incremental coverage")
	}
}

// TestExecOracle exercises the external-command oracle end to end with a
// real process, exactly how the CLI drives an actual binary.
func TestExecOracle(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	// Valid inputs: lines containing "ab" (grep -q exits 0 on match).
	o := ExecOracle("grep", "-q", "ab")
	if !o.Accepts("xxabyy") || o.Accepts("nope") {
		t.Skip("grep unavailable or behaves unexpectedly; skipping")
	}
	cached := oracle.NewCached(o)
	opts := DefaultOptions()
	opts.GenAlphabet = bytesets.OfString("abxy")
	opts.Timeout = 30 * time.Second
	res, err := Learn([]string{"xaby"}, cached, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		s := Sample(res.Grammar, rng)
		if !strings.Contains(s, "ab") {
			t.Fatalf("sampled %q without the mandatory substring", s)
		}
	}
}
